// Unit tests: the checkpointing substrate — undo log semantics, the
// instrumented state wrappers, and the three instrumentation modes.
#include <gtest/gtest.h>

#include <vector>

#include "ckpt/cell.hpp"
#include "ckpt/context.hpp"
#include "ckpt/undo_log.hpp"

using namespace osiris;

TEST(UndoLog, RollbackRestoresSingleWrite) {
  ckpt::UndoLog log;
  std::uint64_t v = 1;
  log.record(&v, sizeof v);
  v = 2;
  log.rollback();
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(log.empty());
}

TEST(UndoLog, RollbackIsLifo) {
  // The same location written twice must roll back to the OLDEST value.
  ckpt::UndoLog log;
  int v = 1;
  log.record(&v, sizeof v);
  v = 2;
  log.record(&v, sizeof v);
  v = 3;
  log.rollback();
  EXPECT_EQ(v, 1);
}

TEST(UndoLog, CheckpointDiscardsEntries) {
  ckpt::UndoLog log;
  int v = 1;
  log.record(&v, sizeof v);
  v = 2;
  log.checkpoint();
  EXPECT_TRUE(log.empty());
  log.rollback();  // nothing to undo
  EXPECT_EQ(v, 2);
}

TEST(UndoLog, TracksMaxLiveBytes) {
  ckpt::UndoLog log;
  std::uint64_t a = 0, b = 0;
  log.record(&a, sizeof a);
  log.record(&b, sizeof b);
  const std::size_t high = log.stats().max_log_bytes;
  EXPECT_GT(high, 0u);
  log.checkpoint();
  EXPECT_EQ(log.live_bytes(), 0u);
  EXPECT_EQ(log.stats().max_log_bytes, high);  // high-water survives reset
}

TEST(UndoLog, CountsOperations) {
  ckpt::UndoLog log;
  int v = 0;
  log.record(&v, sizeof v);
  log.rollback();
  log.checkpoint();
  EXPECT_EQ(log.stats().records, 1u);
  EXPECT_EQ(log.stats().rollbacks, 1u);
  EXPECT_EQ(log.stats().checkpoints, 1u);
}

TEST(UndoLog, DuplicateStoreLoggedOncePerWindow) {
  // Re-recording an exact (addr, len) range inside one window is elided by
  // the first-write filter: the log keeps only the oldest capture, which is
  // the one rollback needs anyway.
  ckpt::UndoLog log;
  std::uint64_t v = 1;
  log.record(&v, sizeof v);
  v = 2;
  log.record(&v, sizeof v);
  v = 3;
  log.record(&v, sizeof v);
  v = 4;
  EXPECT_EQ(log.entry_count(), 1u);
  EXPECT_EQ(log.stats().duplicate_skips, 2u);
  log.rollback();
  EXPECT_EQ(v, 1u);
}

TEST(UndoLog, OverlappingRangeStillLogged) {
  // The filter matches exact (addr, len) only: a same-address store of a
  // different length, or an interior store, must still be captured.
  ckpt::UndoLog log;
  char buf[16];
  std::memset(buf, 'a', sizeof buf);
  log.record(buf, sizeof buf);
  std::memset(buf, 'b', sizeof buf);
  log.record(buf, 8);       // same addr, different len
  log.record(buf + 4, 4);   // interior range
  EXPECT_EQ(log.entry_count(), 3u);
  EXPECT_EQ(log.stats().duplicate_skips, 0u);
  std::memset(buf, 'c', sizeof buf);
  log.rollback();  // oldest capture applied last wins
  for (char c : buf) EXPECT_EQ(c, 'a');
}

TEST(UndoLog, FilterResetsAtCheckpoint) {
  // A new window means a new first write: the same range must be re-captured
  // after checkpoint() so rollback restores the *new* checkpoint's value.
  ckpt::UndoLog log;
  std::uint64_t v = 1;
  log.record(&v, sizeof v);
  v = 2;
  log.checkpoint();
  log.record(&v, sizeof v);
  v = 3;
  EXPECT_EQ(log.entry_count(), 1u);
  log.rollback();
  EXPECT_EQ(v, 2u);  // the post-checkpoint capture, not the stale 1
}

TEST(UndoLog, FilterResetsAfterRollback) {
  ckpt::UndoLog log;
  std::uint64_t v = 1;
  log.record(&v, sizeof v);
  v = 2;
  log.rollback();
  log.record(&v, sizeof v);  // must not be treated as a duplicate
  v = 5;
  EXPECT_EQ(log.entry_count(), 1u);
  log.rollback();
  EXPECT_EQ(v, 1u);
}

TEST(UndoLog, ArenaGrowthPreservesEntries) {
  // Push well past the initial arena so entry headers and saved bytes are
  // both relocated mid-log; every capture must survive the regrow.
  ckpt::UndoLog log;
  std::vector<std::uint64_t> cells(4096);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    cells[i] = i;
    log.record(&cells[i], sizeof cells[i]);
    cells[i] = ~i;
  }
  EXPECT_EQ(log.entry_count(), cells.size());
  EXPECT_TRUE(log.integrity_ok());
  log.rollback();
  for (std::size_t i = 0; i < cells.size(); ++i) EXPECT_EQ(cells[i], i);
}

TEST(UndoLog, IntegrityCanaryOk) {
  ckpt::UndoLog log;
  EXPECT_TRUE(log.integrity_ok());
}

TEST(UndoLog, MultiByteRanges) {
  ckpt::UndoLog log;
  char buf[64];
  std::memset(buf, 'a', sizeof buf);
  log.record(buf, sizeof buf);
  std::memset(buf, 'b', sizeof buf);
  log.rollback();
  for (char c : buf) EXPECT_EQ(c, 'a');
}

namespace {

struct ScopedCtx {
  explicit ScopedCtx(ckpt::Mode mode) : ctx(mode), scope(&ctx) {}
  ckpt::Context ctx;
  ckpt::Context::Scope scope;
};

}  // namespace

TEST(Context, ModeOffNeverLogs) {
  ScopedCtx s(ckpt::Mode::kOff);
  ckpt::Cell<int> cell;
  cell = 5;
  EXPECT_TRUE(s.ctx.log().empty());
}

TEST(Context, ModeAlwaysLogsEvenWithWindowClosed) {
  ScopedCtx s(ckpt::Mode::kAlways);
  s.ctx.set_window_open(false);
  ckpt::Cell<int> cell;
  cell = 5;
  EXPECT_EQ(s.ctx.log().entry_count(), 1u);
}

TEST(Context, ModeWindowOnlyGatesOnWindow) {
  ScopedCtx s(ckpt::Mode::kWindowOnly);
  ckpt::Cell<int> cell;
  s.ctx.set_window_open(false);
  cell = 1;
  EXPECT_TRUE(s.ctx.log().empty());
  s.ctx.set_window_open(true);
  cell = 2;
  EXPECT_EQ(s.ctx.log().entry_count(), 1u);
}

TEST(Context, NoActiveContextIsSafe) {
  ASSERT_EQ(ckpt::Context::active(), nullptr);
  ckpt::Cell<int> cell;
  cell = 3;  // must not crash: harness-side stores are uninstrumented
  EXPECT_EQ(static_cast<int>(cell), 3);
}

TEST(Context, ScopesNest) {
  ckpt::Context outer(ckpt::Mode::kAlways);
  ckpt::Context inner(ckpt::Mode::kAlways);
  ckpt::Context::Scope so(&outer);
  EXPECT_EQ(ckpt::Context::active(), &outer);
  {
    ckpt::Context::Scope si(&inner);
    EXPECT_EQ(ckpt::Context::active(), &inner);
    ckpt::Cell<int> c;
    c = 1;
    EXPECT_EQ(inner.log().entry_count(), 1u);
    EXPECT_TRUE(outer.log().empty());
  }
  EXPECT_EQ(ckpt::Context::active(), &outer);
}

TEST(Cell, RollbackRestoresValue) {
  ScopedCtx s(ckpt::Mode::kAlways);
  ckpt::Cell<std::uint32_t> cell;
  cell = 10;
  s.ctx.log().checkpoint();
  cell = 20;
  cell += 5;
  s.ctx.log().rollback();
  EXPECT_EQ(static_cast<std::uint32_t>(cell), 10u);
}

TEST(Cell, CompoundOperators) {
  ScopedCtx s(ckpt::Mode::kOff);
  ckpt::Cell<int> cell;
  cell = 4;
  cell += 3;
  cell -= 2;
  ++cell;
  EXPECT_EQ(static_cast<int>(cell), 6);
}

TEST(Array, SetAndRollback) {
  ScopedCtx s(ckpt::Mode::kAlways);
  ckpt::Array<int, 8> arr;
  arr.set(3, 7);
  s.ctx.log().checkpoint();
  arr.set(3, 9);
  s.ctx.log().rollback();
  EXPECT_EQ(arr.at(3), 7);
}

TEST(Array, MutateLogsWholeElement) {
  ScopedCtx s(ckpt::Mode::kAlways);
  struct Pair {
    int a = 0, b = 0;
  };
  ckpt::Array<Pair, 4> arr;
  arr.mutate(1) = Pair{1, 2};
  s.ctx.log().checkpoint();
  auto& p = arr.mutate(1);
  p.a = 9;
  p.b = 9;
  s.ctx.log().rollback();
  EXPECT_EQ(arr.at(1).a, 1);
  EXPECT_EQ(arr.at(1).b, 2);
}

TEST(Array, StoreRangeFineGrained) {
  ScopedCtx s(ckpt::Mode::kAlways);
  ckpt::Array<std::uint8_t, 64> arr;
  const std::uint8_t src[4] = {1, 2, 3, 4};
  arr.store_range(10, src, 4);
  // Only 4 bytes should have been logged, not the whole array.
  EXPECT_LT(s.ctx.log().live_bytes(), 64u);
  s.ctx.log().checkpoint();
  const std::uint8_t src2[4] = {9, 9, 9, 9};
  arr.store_range(10, src2, 4);
  s.ctx.log().rollback();
  EXPECT_EQ(arr.at(10), 1);
  EXPECT_EQ(arr.at(13), 4);
}

TEST(Table, AllocFreeAndFind) {
  ScopedCtx s(ckpt::Mode::kOff);
  ckpt::Table<int, 4> table;
  const std::size_t a = table.alloc();
  const std::size_t b = table.alloc();
  ASSERT_NE(a, decltype(table)::npos);
  ASSERT_NE(b, decltype(table)::npos);
  EXPECT_NE(a, b);
  table.mutate(a) = 10;
  table.mutate(b) = 20;
  EXPECT_EQ(table.in_use_count(), 2u);
  EXPECT_EQ(table.find([](int v) { return v == 20; }), b);
  table.free(a);
  EXPECT_EQ(table.in_use_count(), 1u);
  EXPECT_EQ(table.find([](int v) { return v == 10; }), decltype(table)::npos);
}

TEST(Table, FullTableReturnsNpos) {
  ScopedCtx s(ckpt::Mode::kOff);
  ckpt::Table<int, 2> table;
  EXPECT_NE(table.alloc(), decltype(table)::npos);
  EXPECT_NE(table.alloc(), decltype(table)::npos);
  EXPECT_EQ(table.alloc(), decltype(table)::npos);
}

TEST(Table, AllocationRollsBack) {
  // The crash-recovery property the whole design rests on: allocation
  // bookkeeping made inside a window disappears on rollback.
  ScopedCtx s(ckpt::Mode::kAlways);
  ckpt::Table<int, 4> table;
  const std::size_t a = table.alloc();
  table.mutate(a) = 1;
  s.ctx.log().checkpoint();  // top of the loop
  const std::size_t b = table.alloc();
  table.mutate(b) = 2;
  table.free(a);
  s.ctx.log().rollback();
  EXPECT_TRUE(table.in_use(a));
  EXPECT_FALSE(table.in_use(b));
  EXPECT_EQ(table.at(a), 1);
}

TEST(Table, ValueInitializesReusedSlots) {
  ScopedCtx s(ckpt::Mode::kOff);
  ckpt::Table<int, 2> table;
  const std::size_t a = table.alloc();
  table.mutate(a) = 99;
  table.free(a);
  const std::size_t again = table.alloc();
  EXPECT_EQ(again, a);
  EXPECT_EQ(table.at(again), 0);
}

TEST(Table, FreeListReusesLifo) {
  // The free list is a LIFO stack: the most recently freed slot is handed
  // out first. Pinning the order keeps allocation traces (and therefore
  // campaign results) deterministic.
  ScopedCtx s(ckpt::Mode::kOff);
  ckpt::Table<int, 8> table;
  const std::size_t a = table.alloc();  // 0
  const std::size_t b = table.alloc();  // 1
  const std::size_t c = table.alloc();  // 2
  table.free(a);
  table.free(b);
  EXPECT_EQ(table.alloc(), b);  // freed last, reused first
  EXPECT_EQ(table.alloc(), a);
  EXPECT_EQ(table.alloc(), 3u);  // fresh slots resume past c
  EXPECT_TRUE(table.in_use(c));
}

TEST(Table, InUseCountStaysConsistent) {
  ScopedCtx s(ckpt::Mode::kOff);
  ckpt::Table<int, 4> table;
  EXPECT_EQ(table.in_use_count(), 0u);
  const std::size_t a = table.alloc();
  const std::size_t b = table.alloc();
  EXPECT_EQ(table.in_use_count(), 2u);
  table.free(a);
  EXPECT_EQ(table.in_use_count(), 1u);
  table.free(b);
  EXPECT_EQ(table.in_use_count(), 0u);
  // Drain the whole table; the cached count must match capacity exactly.
  for (std::size_t i = 0; i < table.capacity(); ++i) {
    ASSERT_NE(table.alloc(), decltype(table)::npos);
  }
  EXPECT_EQ(table.in_use_count(), table.capacity());
  EXPECT_EQ(table.alloc(), decltype(table)::npos);
}

TEST(Table, FreeListRollsBackWithAllocator) {
  // The free-list links and cached count are recoverable state: after a
  // rollback the allocator must hand out the SAME slots it would have before
  // the rolled-back window ran, not a desynced sequence.
  ScopedCtx s(ckpt::Mode::kAlways);
  ckpt::Table<int, 8> table;
  const std::size_t a = table.alloc();
  const std::size_t b = table.alloc();
  table.free(a);
  s.ctx.log().checkpoint();

  // Window: churn the allocator, then crash.
  const std::size_t r1 = table.alloc();  // reuses a
  EXPECT_EQ(r1, a);
  table.free(b);
  (void)table.alloc();
  (void)table.alloc();
  s.ctx.log().rollback();

  EXPECT_EQ(table.in_use_count(), 1u);
  EXPECT_FALSE(table.in_use(a));
  EXPECT_TRUE(table.in_use(b));
  // Replaying the same operations yields the same slots as before the crash.
  EXPECT_EQ(table.alloc(), a);
}

TEST(Str, AssignAndRollback) {
  ScopedCtx s(ckpt::Mode::kAlways);
  ckpt::Str<16> str;
  str = "before";
  s.ctx.log().checkpoint();
  str = "after";
  s.ctx.log().rollback();
  EXPECT_EQ(str.view(), "before");
}
