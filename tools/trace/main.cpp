// osiris-trace — run a canned fault/recovery scenario with event tracing
// enabled and export the merged machine timeline.
//
//   osiris-trace --scenario ladder --chrome timeline.json
//
// The Chrome output loads straight into chrome://tracing (or Perfetto's
// legacy importer): components appear as named threads, recovery windows as
// duration spans, and every IPC / checkpoint / fault / ladder event as an
// instant. The text output is the same format the golden-trace tests diff.
//
// Exit status: 0 on success, 2 on usage/IO errors, 3 when the scenario run
// did not complete (the export still happens — a truncated timeline of a
// wedged machine is exactly what one wants to look at).

#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "fi/registry.hpp"
#include "os/instance.hpp"
#include "trace/export.hpp"
#include "workload/suite.hpp"

namespace {

using osiris::os::ISys;
using osiris::os::OsConfig;
using osiris::os::OsInstance;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--scenario transient|ladder|hang|storm] [--text FILE] [--chrome FILE]\n"
               "       [--ring EVENTS] [--fastpath]\n"
            << "  --scenario S  fault scenario to trace (default: transient)\n"
            << "                  transient: one in-window PM crash, rolled back and\n"
            << "                             error-virtualized\n"
            << "                  ladder:    persistent DS bug climbing the escalation\n"
            << "                             ladder into quarantine and back\n"
            << "                  hang:      injected DS hang caught by RS heartbeats\n"
            << "                  storm:     DS handler-spin storm caught by the health\n"
            << "                             monitor (fever -> throttle -> quarantine)\n"
            << "  --text FILE   write the merged text trace to FILE ('-' = stdout;\n"
            << "                default when no --chrome is given)\n"
            << "  --chrome FILE write a Chrome trace_event JSON timeline to FILE\n"
            << "  --ring N      per-component ring capacity in events (default "
            << osiris::trace::kDefaultRingCapacity << ")\n"
            << "  --fastpath    run with the IPC fast path on (arena + batching +\n"
            << "                zero-copy); the exported timeline must be identical\n"
            << "                to the default run's — diff them to check\n";
  return 2;
}

/// The busiest probe site of `tag` after a profiling run of `body` — the same
/// site-selection the recovery integration tests use, so the traced scenarios
/// match the tested ones.
osiris::fi::Site* busiest_site(const char* tag, const ISys::ProcBody& body) {
  osiris::fi::Registry::instance().disarm();
  osiris::fi::Registry::instance().reset_counts();
  OsInstance inst{OsConfig{}};
  osiris::workload::register_suite_programs(inst.programs());
  inst.boot();
  inst.run(body);
  osiris::fi::Site* best = nullptr;
  for (osiris::fi::Site* s : osiris::fi::Registry::instance().sites()) {
    if (std::strcmp(s->tag, tag) == 0 && (best == nullptr || s->hits() > best->hits())) best = s;
  }
  return best;
}

struct ScenarioResult {
  OsInstance::Outcome outcome = OsInstance::Outcome::kCompleted;
  std::string text;
  std::string chrome;
  osiris::kernel::KernelStats kernel_stats;
};

ScenarioResult run_scenario(const std::string& name, std::size_t ring_capacity, bool fastpath) {
  OsConfig cfg;
  cfg.trace_enabled = true;
  cfg.trace_ring_capacity = ring_capacity;
  if (fastpath) cfg.fastpath = osiris::kernel::FastPath::all_on();

  osiris::fi::Site* site = nullptr;
  ISys::ProcBody body;

  if (name == "transient") {
    site = busiest_site("pm", [](ISys& sys) {
      for (int i = 0; i < 30; ++i) sys.getpid();
    });
    body = [](ISys& sys) {
      for (int i = 0; i < 30; ++i) sys.setuid(0);
    };
  } else if (name == "ladder") {
    site = busiest_site("ds", [](ISys& sys) {
      for (int i = 0; i < 30; ++i) sys.ds_publish("trace.key", 1);
    });
    cfg.ladder.backoff_base_ticks = 50;
    cfg.ladder.quarantine_cooldown_ticks = 400;  // short: the readmission shows up too
    body = [](ISys& sys) {
      for (int i = 0; i < 120; ++i) sys.ds_publish("trace.key", static_cast<std::uint64_t>(i));
    };
  } else if (name == "hang") {
    site = busiest_site("ds", [](ISys& sys) {
      for (int i = 0; i < 30; ++i) sys.ds_publish("trace.key", 1);
    });
    cfg.heartbeat_interval = 50;
    body = [](ISys& sys) {
      for (int i = 0; i < 30; ++i) sys.ds_publish("trace.key", static_cast<std::uint64_t>(i));
    };
  } else if (name == "storm") {
    site = busiest_site("ds", [](ISys& sys) {
      for (int i = 0; i < 30; ++i) sys.ds_publish("trace.key", 1);
    });
    cfg.health.enabled = true;  // the monitor is the detector for this one
    body = [](ISys& sys) {
      for (int i = 0; i < 200; ++i) sys.ds_publish("trace.key", static_cast<std::uint64_t>(i));
    };
  } else {
    throw std::runtime_error("unknown scenario: " + name);
  }
  if (site == nullptr) throw std::runtime_error("no probe site found for scenario " + name);

  osiris::fi::Registry::instance().reset_counts();
  OsInstance inst(cfg);
  osiris::workload::register_suite_programs(inst.programs());
  inst.boot();

  if (name == "transient") {
    osiris::fi::Registry::instance().arm(site, osiris::fi::FaultType::kNullDeref, 15);
  } else if (name == "ladder") {
    osiris::fi::Registry::instance().arm_persistent(site, osiris::fi::FaultType::kNullDeref, 2);
  } else if (name == "storm") {
    osiris::fi::Registry::instance().set_storm_plan(/*victim=*/-1, /*burst=*/4);
    osiris::fi::Registry::instance().arm_persistent(site, osiris::fi::FaultType::kHandlerSpin,
                                                    10);
  } else {
    osiris::fi::Registry::instance().arm(site, osiris::fi::FaultType::kHang, 5);
  }

  ScenarioResult result;
  result.outcome = inst.run(std::move(body));
  osiris::fi::Registry::instance().disarm();

  const osiris::trace::Tracer& tracer = *inst.tracer();
  const auto events = tracer.merged();
  result.text = osiris::trace::format_text(events, tracer);
  result.chrome = osiris::trace::to_chrome_json(events, tracer);
  result.kernel_stats = inst.kern().stats();
  return result;
}

bool write_output(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::cout << content;
    return true;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario = "transient";
  std::string text_path;
  std::string chrome_path;
  bool fastpath = false;
  // Offline exploration wants full retention, not the cache-sized in-sim
  // default: lose nothing unless the user shrinks the rings explicitly.
  std::size_t ring_capacity = 1u << 16;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scenario" && i + 1 < argc) {
      scenario = argv[++i];
    } else if (arg == "--text" && i + 1 < argc) {
      text_path = argv[++i];
    } else if (arg == "--chrome" && i + 1 < argc) {
      chrome_path = argv[++i];
    } else if (arg == "--ring" && i + 1 < argc) {
      ring_capacity = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else if (arg == "--fastpath") {
      fastpath = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (text_path.empty() && chrome_path.empty()) text_path = "-";

  ScenarioResult result;
  try {
    result = run_scenario(scenario, ring_capacity, fastpath);
  } catch (const std::exception& e) {
    std::cerr << "osiris-trace: " << e.what() << '\n';
    return 2;
  }

  if (!text_path.empty() && !write_output(text_path, result.text)) {
    std::cerr << "osiris-trace: cannot write " << text_path << '\n';
    return 2;
  }
  if (!chrome_path.empty() && !write_output(chrome_path, result.chrome)) {
    std::cerr << "osiris-trace: cannot write " << chrome_path << '\n';
    return 2;
  }

  const osiris::kernel::KernelStats& ks = result.kernel_stats;
  std::cerr << "osiris-trace: scenario=" << scenario
            << " outcome=" << OsInstance::outcome_name(result.outcome)
            << " fastpath=" << (fastpath ? "on" : "off") << " queue-hw=" << ks.queue_high_water
            << " spills=" << ks.arena_spills << " batches=" << ks.batches << "/"
            << ks.batched_messages << " zero-copy-bytes=" << ks.grant_bypass_bytes
            << " fevers=" << ks.fever_onsets << " throttled-drops=" << ks.throttled_drops
            << '\n';
  return result.outcome == OsInstance::Outcome::kCompleted ? 0 : 3;
}
