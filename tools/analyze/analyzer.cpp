#include "analyzer.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "callgraph.hpp"
#include "discipline.hpp"
#include "effects.hpp"
#include "lexer.hpp"
#include "seep_pass.hpp"

namespace fs = std::filesystem;

namespace osiris::analyze {

namespace {

/// Server implementation files: file stem -> server name used in the
/// classification report and at runtime (Recoverable::name()).
const char* server_for_stem(const std::string& stem) {
  if (stem == "pm") return "pm";
  if (stem == "vm") return "vm";
  if (stem == "vfs") return "vfs";
  if (stem == "ds") return "ds";
  if (stem == "rs") return "rs";
  if (stem == "sys_task") return "sys";
  return nullptr;
}

bool is_source(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

struct Json {
  std::string s;
  int indent = 0;
  bool need_comma = false;

  void nl() {
    s += '\n';
    s.append(static_cast<std::size_t>(indent) * 2, ' ');
  }
  void sep() {
    if (need_comma) s += ',';
    need_comma = false;
    nl();
  }
  void open(char c) {
    s += c;
    ++indent;
    need_comma = false;
  }
  void close(char c) {
    --indent;
    nl();
    s += c;
    need_comma = true;
  }
  void key(const std::string& k) {
    sep();
    s += '"';
    append_json_escaped(s, k);
    s += "\": ";
  }
  void str(const std::string& v) {
    s += '"';
    append_json_escaped(s, v);
    s += '"';
    need_comma = true;
  }
  void num(long long v) {
    s += std::to_string(v);
    need_comma = true;
  }
  void boolean(bool v) {
    s += v ? "true" : "false";
    need_comma = true;
  }
};

}  // namespace

Report analyze_tree(const std::string& root) {
  const fs::path base(root);
  // Distinguish the three loader failure modes so a bad --root (typo, file
  // where a tree was expected, partial checkout) reports what is actually
  // wrong instead of the generic "not an osiris tree".
  if (!fs::exists(base)) {
    throw std::runtime_error("root does not exist: " + root);
  }
  if (!fs::is_directory(base)) {
    throw std::runtime_error("root is not a directory: " + root);
  }
  const fs::path dirs[] = {base / "src" / "servers", base / "src" / "fs", base / "src" / "os",
                           base / "src" / "recovery"};
  if (!fs::is_directory(dirs[0])) {
    throw std::runtime_error("not an osiris tree (missing src/servers under " + root + ")");
  }

  Report report;
  std::vector<LexedFile> files;
  for (const fs::path& dir : dirs) {
    if (!fs::is_directory(dir)) continue;
    std::vector<fs::path> paths;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file() && is_source(entry.path())) paths.push_back(entry.path());
    }
    std::sort(paths.begin(), paths.end());  // deterministic report order
    for (const fs::path& p : paths) {
      files.push_back(lex_file(p.string(), fs::relative(p, base).generic_string()));
    }
  }
  report.files_scanned = static_cast<int>(files.size());

  for (const LexedFile& f : files) {
    const std::string stem = fs::path(f.path).stem().string();
    const char* server = server_for_stem(stem);

    // Pass 1 — discipline. Raw kernel sends are only policed inside server
    // implementations: ServerCommon's seep_* wrappers and the OS glue are
    // the sanctioned users of the kernel IPC surface.
    DisciplineOptions opt;
    opt.check_raw_kernel_sends = server != nullptr;
    const DisciplineStats st = run_discipline_pass(f, opt, report.findings);
    report.state_structs_checked += st.state_structs;
    report.state_fields_checked += st.state_fields;

    // Pass 2 — SEEP analysis inputs. The declarative spec table is the
    // primary source of message definitions and classes; `*Msg` enums and
    // literal `c.set(...)` tables (pre-spec trees, fixtures) still parse.
    if (stem == "msg_spec") {
      auto rows = parse_spec_rows(f);
      for (const SpecRow& r : rows) {
        report.messages.push_back(MsgDef{r.name, r.value, "MsgSpec", r.file, r.line});
        report.classification.push_back(ClassEntry{r.name, r.cls, r.kind == "REQ", r.file, r.line});
      }
      report.spec.insert(report.spec.end(), rows.begin(), rows.end());
    }
    if (stem == "protocol") {
      auto msgs = parse_protocol_enums(f);
      report.messages.insert(report.messages.end(), msgs.begin(), msgs.end());
      auto entries = parse_classification(f, report.findings);
      report.classification.insert(report.classification.end(), entries.begin(), entries.end());
    }
    if (server != nullptr) {
      auto sites = extract_send_sites(f, server);
      report.sites.insert(report.sites.end(), sites.begin(), sites.end());
      auto regs = extract_handler_regs(f, server);
      report.handlers.insert(report.handlers.end(), regs.begin(), regs.end());
    }
    // The recovery engine is RCB code: it legitimately uses raw kernel IPC
    // (no seep_* wrappers, no window — the RCB is assumed fault-free), but
    // its channels to RS (park/readmit announcements) still belong in the
    // channel graph and must resolve against the classification.
    if (server == nullptr && f.path.find("src/recovery/") != std::string::npos) {
      auto sites = extract_rcb_send_sites(f);
      report.sites.insert(report.sites.end(), sites.begin(), sites.end());
    }

    // Pass 4 (determinism lint) — file-local, so it runs in the per-file
    // loop. src/support (where rng.hpp lives) is outside the scanned dirs,
    // making the sanctioned randomness wrapper structurally exempt.
    run_determinism_pass(f, report.findings);
  }

  resolve_and_predict(report);
  crosscheck_spec_handlers(report);

  // Pass 4 (effects) — needs Pass 2's resolved site classes and Pass 3's
  // handler registrations, so it runs after cross-file resolution.
  const CallGraph graph = build_call_graph(files);
  run_effects_pass(files, graph, report);

  // Findings appended by pass 2 (cross-file resolution) could not consult
  // the per-file suppression map at creation time: filter them here.
  report.findings.erase(
      std::remove_if(report.findings.begin(), report.findings.end(),
                     [&files](const Finding& fd) {
                       for (const LexedFile& f : files) {
                         if (f.path == fd.file) return f.suppressed(fd.detector, fd.line);
                       }
                       return false;
                     }),
      report.findings.end());

  std::sort(report.findings.begin(), report.findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.detector < b.detector;
  });
  return report;
}

std::string report_to_json(const Report& report) {
  Json j;
  j.open('{');

  j.key("files_scanned");
  j.num(report.files_scanned);
  j.key("state_structs_checked");
  j.num(report.state_structs_checked);
  j.key("state_fields_checked");
  j.num(report.state_fields_checked);
  j.key("messages");
  j.num(static_cast<long long>(report.messages.size()));
  j.key("classification_entries");
  j.num(static_cast<long long>(report.classification.size()));
  j.key("spec_rows");
  j.num(static_cast<long long>(report.spec.size()));
  j.key("handler_regs");
  j.num(static_cast<long long>(report.handlers.size()));
  j.key("handler_effects");
  j.num(static_cast<long long>(report.handler_effects.size()));

  j.key("findings");
  j.open('[');
  for (const Finding& f : report.findings) {
    j.sep();
    j.open('{');
    j.key("detector");
    j.str(f.detector);
    j.key("file");
    j.str(f.file);
    j.key("line");
    j.num(f.line);
    j.key("message");
    j.str(f.message);
    j.close('}');
  }
  j.close(']');

  j.key("sites");
  j.open('[');
  for (const SendSite& s : report.sites) {
    j.sep();
    j.open('{');
    j.key("server");
    j.str(s.server);
    j.key("file");
    j.str(s.file);
    j.key("line");
    j.num(s.line);
    j.key("kind");
    j.str(s.kind);
    j.key("msg");
    j.str(s.msg);
    j.key("dst");
    j.str(s.dst);
    j.key("class");
    j.str(seep_class_name(s.cls));
    j.key("classified");
    j.boolean(s.classified);
    j.close('}');
  }
  j.close(']');

  j.key("channel_graph");
  j.open('[');
  for (const ChannelEdge& e : report.edges) {
    j.sep();
    j.open('{');
    j.key("from");
    j.str(e.from);
    j.key("to");
    j.str(e.to);
    j.key("msg");
    j.str(e.msg);
    j.key("class");
    j.str(seep_class_name(e.cls));
    j.close('}');
  }
  j.close(']');

  j.key("window_predictions");
  j.open('[');
  for (const WindowPrediction& p : report.predictions) {
    j.sep();
    j.open('{');
    j.key("server");
    j.str(p.server);
    j.key("classes_used");
    j.open('[');
    for (SeepClass c : p.classes_used) {
      j.sep();
      j.str(seep_class_name(c));
    }
    j.close(']');
    for (int pi = 0; pi < kNumPolicies; ++pi) {
      const auto pol = static_cast<Policy>(pi);
      j.key(std::string(policy_name(pol)) + "_may_close_by_seep");
      j.boolean(p.may_close_by_seep[pi]);
      j.key(std::string(policy_name(pol)) + "_may_taint");
      j.boolean(p.may_taint[pi]);
    }
    j.close('}');
  }
  j.close(']');

  j.close('}');
  j.s += '\n';
  return j.s;
}

std::string handler_effects_to_json(const Report& report, const std::string& root) {
  Json j;
  j.open('{');
  j.key("schema_version");
  j.num(1);
  j.key("root");
  j.str(root);
  j.key("policies");
  j.open('[');
  for (int pi = 0; pi < kNumPolicies; ++pi) {
    j.sep();
    j.str(policy_name(static_cast<Policy>(pi)));
  }
  j.close(']');

  j.key("handlers");
  j.open('[');
  for (const HandlerEffects& h : report.handler_effects) {
    j.sep();
    j.open('{');
    j.key("server");
    j.str(h.server);
    j.key("msg");
    j.str(h.msg);
    j.key("kind");
    j.str(h.kind);
    j.key("fn");
    j.str(h.fn);
    j.key("file");
    j.str(h.file);
    j.key("line");
    j.num(h.line);
    j.key("has_body");
    j.boolean(h.has_body);
    j.key("opens_window");
    j.boolean(h.opens_window);
    j.key("recursive");
    j.boolean(h.recursive);
    j.key("has_unbounded_loop");
    j.boolean(h.has_unbounded_loop);
    j.key("unresolved_callees");
    j.num(h.unresolved_callees);
    j.key("mutations_total");
    j.num(h.mutations_total);
    j.key("mutations_after_close");
    j.num(h.mutations_after_close);
    j.key("may_close_by_yield");
    j.boolean(h.may_close_by_yield);
    j.key("may_park");
    j.boolean(h.may_park);
    j.key("predictions");
    j.open('{');
    for (int pi = 0; pi < kNumPolicies; ++pi) {
      j.key(policy_name(static_cast<Policy>(pi)));
      j.open('{');
      j.key("may_close_by_seep");
      j.boolean(h.may_close_by_seep[pi]);
      j.key("may_taint");
      j.boolean(h.may_taint[pi]);
      j.close('}');
    }
    j.close('}');
    j.key("effects");
    j.open('[');
    for (const Effect& e : h.effects) {
      j.sep();
      j.open('{');
      j.key("kind");
      j.str(effect_kind_name(e.kind));
      j.key("detail");
      j.str(e.detail);
      if (e.kind == EffectKind::kSend) {
        j.key("msg");
        j.str(e.msg);
        j.key("dst");
        j.str(e.dst);
        j.key("class");
        j.str(seep_class_name(e.cls));
        j.key("classified");
        j.boolean(e.classified);
        j.key("sync");
        j.boolean(e.sync);
      }
      j.key("file");
      j.str(e.file);
      j.key("line");
      j.num(e.line);
      j.close('}');
    }
    j.close(']');
    j.close('}');
  }
  j.close(']');

  // The FOM worklist (ROADMAP item 2): every distinct blocking point with
  // the handler rows it is reachable from.
  struct Point {
    std::string detail;
    bool suppressed = false;
    std::vector<std::string> handlers;
  };
  std::map<std::pair<std::string, int>, Point> points;
  for (const HandlerEffects& h : report.handler_effects) {
    for (const Effect& e : h.effects) {
      if (e.kind != EffectKind::kBlocking) continue;
      Point& p = points[{e.file, e.line}];
      p.detail = e.detail;
      p.suppressed = e.suppressed;
      const std::string id = h.server + "/" + h.msg;
      if (std::find(p.handlers.begin(), p.handlers.end(), id) == p.handlers.end()) {
        p.handlers.push_back(id);
      }
    }
  }
  j.key("blocking_points");
  j.open('[');
  for (const auto& [loc, p] : points) {
    j.sep();
    j.open('{');
    j.key("file");
    j.str(loc.first);
    j.key("line");
    j.num(loc.second);
    j.key("detail");
    j.str(p.detail);
    j.key("suppressed");
    j.boolean(p.suppressed);
    j.key("handlers");
    j.open('[');
    for (const std::string& id : p.handlers) {
      j.sep();
      j.str(id);
    }
    j.close(']');
    j.close('}');
  }
  j.close(']');

  j.close('}');
  j.s += '\n';
  return j.s;
}

}  // namespace osiris::analyze
