// osiris-analyze — static discipline checker and SEEP/recovery-window
// analyzer for the OSIRIS source tree.
//
// Exit status: 0 when the tree is clean, 1 when any finding survives
// suppression filtering, 2 on usage/IO errors.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "analyzer.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--root DIR] [--json FILE] [--effects [FILE]] [--quiet]\n"
            << "  --root DIR       repository root to analyze (default: .)\n"
            << "  --json FILE      write the machine-readable report to FILE\n"
            << "  --effects [FILE] write Pass 4 per-handler effect summaries to FILE\n"
            << "                   (default: handler_effects.json)\n"
            << "  --quiet          suppress the summary (findings still print)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  std::string effects_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--effects") {
      effects_path = "handler_effects.json";
      if (i + 1 < argc && argv[i + 1][0] != '-') effects_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }

  osiris::analyze::Report report;
  try {
    report = osiris::analyze::analyze_tree(root);
  } catch (const std::exception& e) {
    std::cerr << "osiris-analyze: " << e.what() << '\n';
    return 2;
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "osiris-analyze: cannot write " << json_path << '\n';
      return 2;
    }
    out << osiris::analyze::report_to_json(report);
  }
  if (!effects_path.empty()) {
    std::ofstream out(effects_path, std::ios::binary);
    if (!out) {
      std::cerr << "osiris-analyze: cannot write " << effects_path << '\n';
      return 2;
    }
    out << osiris::analyze::handler_effects_to_json(report, root);
  }

  for (const auto& f : report.findings) {
    std::cout << f.file << ':' << f.line << ": [" << f.detector << "] " << f.message << '\n';
  }

  if (!quiet) {
    std::cout << "osiris-analyze: " << report.files_scanned << " files, "
              << report.state_structs_checked << " state structs ("
              << report.state_fields_checked << " fields), " << report.messages.size()
              << " protocol messages, " << report.classification.size()
              << " classification entries, " << report.sites.size() << " outbound sites, "
              << report.edges.size() << " channel edges, " << report.findings.size()
              << " findings\n";
    for (const auto& p : report.predictions) {
      std::cout << "  window[" << p.server << "]:";
      for (int pi = 0; pi < osiris::analyze::kNumPolicies; ++pi) {
        const auto pol = static_cast<osiris::analyze::Policy>(pi);
        std::cout << ' ' << osiris::analyze::policy_name(pol) << "=("
                  << (p.may_close_by_seep[pi] ? "close" : "stay")
                  << (p.may_taint[pi] ? ",taint" : "") << ')';
      }
      std::cout << '\n';
    }
  }

  return report.findings.empty() ? 0 : 1;
}
