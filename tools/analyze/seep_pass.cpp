#include "seep_pass.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <string_view>

namespace osiris::analyze {

namespace {

using Tokens = std::vector<Token>;

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::size_t match_forward(const Tokens& t, std::size_t open, const char* op, const char* cl) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].is(op)) ++depth;
    if (t[i].is(cl) && --depth == 0) return i;
  }
  return t.size();
}

/// Split the argument list of a call whose '(' is at `open` into top-level
/// argument token ranges [first, last).
std::vector<std::pair<std::size_t, std::size_t>> split_args(const Tokens& t, std::size_t open,
                                                            std::size_t close) {
  std::vector<std::pair<std::size_t, std::size_t>> args;
  // Angle brackets are deliberately not tracked: `1ULL << x` lexes as two
  // '<' tokens and would unbalance the depth; no send-site or enum argument
  // contains a comma inside template angle brackets.
  int depth = 0;
  std::size_t start = open + 1;
  for (std::size_t i = open + 1; i < close; ++i) {
    if (t[i].is("(") || t[i].is("{") || t[i].is("[")) ++depth;
    if (t[i].is(")") || t[i].is("}") || t[i].is("]")) --depth;
    if (depth == 0 && t[i].is(",")) {
      args.emplace_back(start, i);
      start = i + 1;
    }
  }
  if (start < close) args.emplace_back(start, close);
  return args;
}

bool looks_like_msg_constant(const std::string& s) {
  if (s.size() < 4) return false;
  bool has_underscore = false;
  for (char c : s) {
    if (c == '_') has_underscore = true;
    if ((std::isupper(static_cast<unsigned char>(c)) == 0) && c != '_' &&
        (std::isdigit(static_cast<unsigned char>(c)) == 0)) {
      return false;
    }
  }
  return has_underscore;
}

/// First ALL_CAPS identifier in [from, to) — the message-type constant in
/// expressions like `PM_SIG_NOTIFY | kernel::kNotifyBit`.
std::string first_msg_constant(const Tokens& t, std::size_t from, std::size_t to) {
  for (std::size_t i = from; i < to; ++i) {
    if (t[i].kind == Tok::kIdent && looks_like_msg_constant(t[i].text)) return t[i].text;
  }
  return {};
}

SeepClass seep_class_from_token(std::string_view name) {
  if (name == "kNonStateModifying") return SeepClass::kNonStateModifying;
  if (name == "kRequesterScoped") return SeepClass::kRequesterScoped;
  return SeepClass::kStateModifying;
}

/// Message factories whose first argument carries the type constant.
bool is_msg_factory(const Token& tk) {
  return tk.is_ident("make_msg") || tk.is_ident("make_reply") || tk.is_ident("encode") ||
         tk.is_ident("encode_text");
}

}  // namespace

const char* seep_class_name(SeepClass c) {
  switch (c) {
    case SeepClass::kNonStateModifying: return "non-state-modifying";
    case SeepClass::kStateModifying: return "state-modifying";
    case SeepClass::kRequesterScoped: return "requester-scoped";
  }
  return "?";
}

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kPessimistic: return "pessimistic";
    case Policy::kEnhanced: return "enhanced";
    case Policy::kExtended: return "extended";
  }
  return "?";
}

std::map<std::string, int> Report::findings_by_detector() const {
  std::map<std::string, int> by;
  for (const Finding& f : findings) ++by[f.detector];
  return by;
}

const WindowPrediction* Report::prediction_for(const std::string& server) const {
  for (const WindowPrediction& p : predictions) {
    if (p.server == server) return &p;
  }
  return nullptr;
}

std::vector<MsgDef> parse_protocol_enums(const LexedFile& f) {
  std::vector<MsgDef> out;
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!t[i].is_ident("enum")) continue;
    std::size_t p = i + 1;
    if (p < t.size() && (t[p].is_ident("class") || t[p].is_ident("struct"))) ++p;
    if (p >= t.size() || t[p].kind != Tok::kIdent || !ends_with(t[p].text, "Msg")) continue;
    const std::string enum_name = t[p].text;
    std::size_t open = p + 1;
    while (open < t.size() && !t[open].is("{") && !t[open].is(";")) ++open;
    if (open >= t.size() || t[open].is(";")) continue;
    const std::size_t close = match_forward(t, open, "{", "}");
    for (auto [a, b] : split_args(t, open, close)) {
      if (a >= b || t[a].kind != Tok::kIdent) continue;
      MsgDef def;
      def.name = t[a].text;
      def.enum_name = enum_name;
      def.file = f.path;
      def.line = t[a].line;
      // `NAME = 0x123`; enumerators in the protocol are always explicit.
      if (a + 2 < b && t[a + 1].is("=") && t[a + 2].kind == Tok::kNumber) {
        def.value = static_cast<std::uint32_t>(std::strtoul(t[a + 2].text.c_str(), nullptr, 0));
      }
      out.push_back(std::move(def));
    }
    i = close;
  }
  return out;
}

std::vector<ClassEntry> parse_classification(const LexedFile& f, std::vector<Finding>& findings) {
  std::vector<ClassEntry> out;
  const Tokens& t = f.tokens;
  std::map<std::string, SeepClass> aliases;  // SM / NSM / RSC ...

  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    // `const auto X = [seep::]SeepClass::kY;`
    if (t[i].is_ident("auto") && i + 2 < t.size() && t[i + 1].kind == Tok::kIdent &&
        t[i + 2].is("=")) {
      for (std::size_t j = i + 3; j < t.size() && !t[j].is(";"); ++j) {
        if (t[j].is_ident("SeepClass") && j + 2 < t.size() && t[j + 1].is("::")) {
          aliases[t[i + 1].text] = seep_class_from_token(t[j + 2].text);
          break;
        }
      }
      continue;
    }
    // `c.set(NAME, CLASS[, replyable])`
    if (!t[i].is_ident("set") || !t[i + 1].is("(") || i == 0 || !t[i - 1].is(".")) continue;
    const std::size_t open = i + 1;
    const std::size_t close = match_forward(t, open, "(", ")");
    const auto args = split_args(t, open, close);
    if (args.size() < 2) continue;
    ClassEntry e;
    e.file = f.path;
    e.line = t[i].line;
    e.msg = t[args[0].first].text;
    // Derivation loops (`for (const MsgSpec& s : kMsgSpecTable) c.set(s.type,
    // ...)`) are not literal entries: the spec rows themselves carry the
    // classes, and the analyzer reads them via parse_spec_rows instead.
    if (!looks_like_msg_constant(e.msg)) {
      i = close;
      continue;
    }

    // Class argument: an alias identifier or a `SeepClass::kX` expression.
    const auto [ca, cb] = args[1];
    bool resolved = false;
    for (std::size_t j = ca; j < cb; ++j) {
      if (t[j].is_ident("SeepClass") && j + 2 < cb && t[j + 1].is("::")) {
        e.cls = seep_class_from_token(t[j + 2].text);
        resolved = true;
        break;
      }
      auto it = aliases.find(t[j].text);
      if (t[j].kind == Tok::kIdent && it != aliases.end()) {
        e.cls = it->second;
        resolved = true;
        break;
      }
    }
    if (!resolved) {
      findings.push_back(Finding{kDetStaleClassEntry, f.path, e.line,
                                 "cannot resolve SEEP class expression for " + e.msg});
    }
    if (args.size() >= 3) {
      const auto [ra, rb] = args[2];
      for (std::size_t j = ra; j < rb; ++j) {
        if (t[j].is_ident("false")) e.replyable = false;
        if (t[j].is_ident("true")) e.replyable = true;
      }
    }
    out.push_back(std::move(e));
    i = close;
  }
  return out;
}

std::vector<SendSite> extract_send_sites(const LexedFile& f, const std::string& server) {
  std::vector<SendSite> out;
  const Tokens& t = f.tokens;
  // Local `Message x = [kernel::]make_msg(TYPE...)` / make_reply / encode /
  // encode_text bindings. The map is file-wide: variable uses always follow
  // their definition, and redefinitions overwrite, which matches lexical
  // order closely enough for straight-line handler code.
  std::map<std::string, std::string> var_msg;

  auto msg_from_factory = [&](std::size_t id_idx) -> std::string {
    // id_idx points at a message factory; the type is the first message
    // constant of the first argument.
    std::size_t open = id_idx + 1;
    if (open >= t.size() || !t[open].is("(")) return {};
    const std::size_t close = match_forward(t, open, "(", ")");
    const auto args = split_args(t, open, close);
    if (args.empty()) return {};
    return first_msg_constant(t, args[0].first, args[0].second);
  };

  static constexpr std::string_view kEndpointServers[][2] = {
      {"kPmEp", "pm"}, {"kVmEp", "vm"}, {"kVfsEp", "vfs"},
      {"kDsEp", "ds"}, {"kRsEp", "rs"}, {"kSysEp", "sys"},
  };

  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;

    // Track Message variable bindings.
    if (t[i].is("Message") && i + 2 < t.size() && t[i + 1].kind == Tok::kIdent &&
        t[i + 2].is("=")) {
      for (std::size_t j = i + 3; j < t.size() && !t[j].is(";"); ++j) {
        if (is_msg_factory(t[j])) {
          const std::string msg = msg_from_factory(j);
          if (!msg.empty()) var_msg[t[i + 1].text] = msg;
          break;
        }
      }
      continue;
    }

    // Explicit window interaction with a literal class — the idiom for
    // state changes that leave the data section without a message (e.g.
    // VFS's filesystem mutations, "a state-modifying SEEP into the
    // FS/driver domain").
    if (t[i].is("on_outbound") && t[i + 1].is("(")) {
      const std::size_t open = i + 1;
      const std::size_t close = match_forward(t, open, "(", ")");
      if (close + 1 < t.size() && t[close + 1].is("{")) continue;  // definition
      for (std::size_t j = open + 1; j < close; ++j) {
        if (t[j].is_ident("SeepClass") && j + 2 < close && t[j + 1].is("::")) {
          SendSite site;
          site.server = server;
          site.file = f.path;
          site.line = t[i].line;
          site.kind = "explicit";
          site.msg = "<explicit>";
          site.dst = "<domain>";
          site.cls = seep_class_from_token(t[j + 2].text);
          site.classified = true;
          out.push_back(std::move(site));
          break;
        }
      }
      i = close;
      continue;
    }

    std::string kind;
    if (t[i].is("seep_call")) kind = "call";
    if (t[i].is("seep_send")) kind = "send";
    if (t[i].is("seep_notify")) kind = "notify";
    // Batched dispatch: seep_notify_batch(dsts, TYPE) fans one classified
    // SEEP out to a set of endpoints. Same argument shape as seep_notify —
    // the destination-set expression names Endpoint, the type is the second
    // argument — so the generic extraction below covers it.
    if (t[i].is("seep_notify_batch")) kind = "notify_batch";
    if (t[i].is("seep_deferred_reply")) kind = "deferred_reply";
    if (kind.empty() || !t[i + 1].is("(")) continue;
    // Skip the wrapper *definitions* (preceded by `void` / `Message` etc.
    // followed by a parameter list containing `Endpoint dst`): only flag
    // expression uses — heuristically, a definition is followed by `{`
    // right after the matching ')'.
    const std::size_t open = i + 1;
    const std::size_t close = match_forward(t, open, "(", ")");
    if (close + 1 < t.size() && t[close + 1].is("{")) continue;

    const auto args = split_args(t, open, close);
    if (args.empty()) continue;

    SendSite site;
    site.server = server;
    site.file = f.path;
    site.line = t[i].line;
    site.kind = kind;

    // Destination: first argument.
    site.dst = "<dynamic>";
    for (std::size_t j = args[0].first; j < args[0].second; ++j) {
      for (const auto& [ep, srv] : kEndpointServers) {
        if (t[j].is_ident(ep)) site.dst = srv;
      }
    }
    if (site.dst == "<dynamic>") {
      for (std::size_t j = args[0].first; j < args[0].second; ++j) {
        if (t[j].is_ident("Endpoint")) site.dst = "client";
      }
    }

    // Message type: second argument.
    site.msg = "<dynamic>";
    if (args.size() >= 2) {
      const auto [ma, mb] = args[1];
      bool factory = false;
      for (std::size_t j = ma; j < mb; ++j) {
        if (is_msg_factory(t[j])) {
          const std::string msg = msg_from_factory(j);
          if (!msg.empty()) site.msg = msg;
          factory = true;
          break;
        }
      }
      if (!factory) {
        const std::string direct = first_msg_constant(t, ma, mb);
        if (!direct.empty()) {
          site.msg = direct;  // seep_notify(dst, TYPE)
        } else if (mb - ma >= 1 && t[ma].kind == Tok::kIdent) {
          // A plain variable (possibly dereferenced: `*reply`).
          std::size_t va = ma;
          while (va < mb && t[va].is("*")) ++va;
          auto it = var_msg.find(t[va].text);
          if (it != var_msg.end()) site.msg = it->second;
        }
      }
    }
    out.push_back(std::move(site));
    i = close;
  }
  return out;
}

std::vector<SendSite> extract_rcb_send_sites(const LexedFile& f) {
  std::vector<SendSite> out;
  const Tokens& t = f.tokens;

  static constexpr std::string_view kEndpointServers[][2] = {
      {"kPmEp", "pm"}, {"kVmEp", "vm"}, {"kVfsEp", "vfs"},
      {"kDsEp", "ds"}, {"kRsEp", "rs"}, {"kSysEp", "sys"},
  };

  for (std::size_t i = 2; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || (!t[i].is("send") && !t[i].is("notify"))) continue;
    if (!t[i + 1].is("(")) continue;
    // Receiver must be the kernel reference: `kernel_.send(...)`.
    if (!t[i - 1].is(".") || !t[i - 2].is_ident("kernel_")) continue;
    const std::size_t open = i + 1;
    const std::size_t close = match_forward(t, open, "(", ")");
    const auto args = split_args(t, open, close);
    if (args.size() < 2) continue;

    SendSite site;
    site.server = "rcb";
    site.file = f.path;
    site.line = t[i].line;
    site.kind = "rcb";

    // Kernel::send(src, dst, msg) / Kernel::notify(src, dst, type): the
    // destination is the first named server endpoint among the arguments
    // (src is kKernelEp, which has no server mapping).
    site.dst = "<dynamic>";
    for (std::size_t j = open + 1; j < close && site.dst == "<dynamic>"; ++j) {
      for (const auto& [ep, srv] : kEndpointServers) {
        if (t[j].is_ident(ep)) site.dst = srv;
      }
    }

    site.msg = "<dynamic>";
    for (std::size_t j = open + 1; j < close; ++j) {
      if (is_msg_factory(t[j])) {
        std::size_t f_open = j + 1;
        if (f_open < t.size() && t[f_open].is("(")) {
          const std::size_t f_close = match_forward(t, f_open, "(", ")");
          const auto f_args = split_args(t, f_open, f_close);
          if (!f_args.empty()) {
            const std::string msg = first_msg_constant(t, f_args[0].first, f_args[0].second);
            if (!msg.empty()) site.msg = msg;
          }
        }
        break;
      }
    }
    if (site.msg == "<dynamic>") {
      // notify(src, dst, TYPE): the type is the last argument directly.
      const auto [ma, mb] = args.back();
      const std::string direct = first_msg_constant(t, ma, mb);
      if (!direct.empty()) site.msg = direct;
    }
    if (site.msg == "<dynamic>" || site.dst == "<dynamic>") continue;  // reply plumbing etc.
    out.push_back(std::move(site));
    i = close;
  }
  return out;
}

std::vector<SpecRow> parse_spec_rows(const LexedFile& f) {
  std::vector<SpecRow> out;
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    // A row invocation `X(NAME, value, owner, CLS, KIND, nargs, text, doc)`
    // of the spec X-macro. The expansion sites `OSIRIS_MSG_SPEC(X)` lex as
    // `X` followed by `)`, so they cannot match here.
    if (!t[i].is_ident("X") || !t[i + 1].is("(")) continue;
    const std::size_t open = i + 1;
    const std::size_t close = match_forward(t, open, "(", ")");
    const auto args = split_args(t, open, close);
    if (args.size() == 8 && t[args[0].first].kind == Tok::kIdent &&
        looks_like_msg_constant(t[args[0].first].text)) {
      SpecRow r;
      r.name = t[args[0].first].text;
      r.file = f.path;
      r.line = t[args[0].first].line;
      if (t[args[1].first].kind == Tok::kNumber) {
        r.value =
            static_cast<std::uint32_t>(std::strtoul(t[args[1].first].text.c_str(), nullptr, 0));
      }
      r.owner = t[args[2].first].text;
      const std::string& cls = t[args[3].first].text;
      r.cls = cls == "NSM"   ? SeepClass::kNonStateModifying
              : cls == "RSC" ? SeepClass::kRequesterScoped
                             : SeepClass::kStateModifying;
      r.kind = t[args[4].first].text;
      if (t[args[5].first].kind == Tok::kNumber) {
        r.args = static_cast<int>(std::strtol(t[args[5].first].text.c_str(), nullptr, 0));
      }
      r.text = t[args[6].first].is_ident("TXT");
      out.push_back(std::move(r));
    }
    i = close;
  }
  return out;
}

std::vector<HandlerReg> extract_handler_regs(const LexedFile& f, const std::string& server) {
  std::vector<HandlerReg> out;
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    std::string kind;
    if (t[i].is_ident("on")) kind = "request";
    if (t[i].is_ident("on_notify")) kind = "notify";
    if (t[i].is_ident("on_reply")) kind = "reply";
    if (kind.empty() || !t[i + 1].is("(")) continue;
    const std::size_t open = i + 1;
    const std::size_t close = match_forward(t, open, "(", ")");
    const auto args = split_args(t, open, close);
    // Registrations carry (MSG_CONSTANT, &Server::handler); anything else
    // (declarations, unrelated calls) lacks the constant or the second arg.
    if (args.size() < 2) continue;
    const std::string msg = first_msg_constant(t, args[0].first, args[0].second);
    if (msg.empty()) continue;
    // Handler function name: the last identifier of `&Server::handler`.
    std::string fn;
    for (std::size_t j = args[1].first; j < args[1].second; ++j) {
      if (t[j].kind == Tok::kIdent) fn = t[j].text;
    }
    out.push_back(HandlerReg{server, msg, kind, fn, f.path, t[i].line});
    i = close;
  }
  return out;
}

void crosscheck_spec_handlers(Report& report) {
  if (report.spec.empty()) return;  // tree without a spec table: nothing to check

  static const std::set<std::string> kServers = {"pm", "vm", "vfs", "ds", "rs", "sys"};
  std::map<std::string, const SpecRow*> rows;
  for (const SpecRow& r : report.spec) rows[r.name] = &r;

  // Servers with at least one parsed registration: the spec-side
  // completeness check only fires for them, so a partially scanned tree
  // (like the fixture) does not produce findings for absent servers.
  std::set<std::string> servers_seen;
  for (const HandlerReg& h : report.handlers) servers_seen.insert(h.server);

  std::set<std::string> handled;  // "msg:kind"
  for (const HandlerReg& h : report.handlers) {
    auto it = rows.find(h.msg);
    if (it == rows.end()) {
      report.findings.push_back(
          Finding{kDetHandlerWithoutSpec, h.file, h.line,
                  h.server + " registers a handler for " + h.msg +
                      " which has no row in OSIRIS_MSG_SPEC"});
      continue;
    }
    const SpecRow& r = *it->second;
    handled.insert(h.msg + ":" + h.kind);
    // Kind agreement mirrors the OSIRIS_ASSERTs in ServerCommon::on*():
    // notifications register via on_notify(), requests and fire-and-forget
    // sends via on(), and only replyable requests can have on_reply().
    const bool kind_ok = (h.kind == "notify" && r.kind == "NOTE") ||
                         (h.kind == "request" && (r.kind == "REQ" || r.kind == "SEND")) ||
                         (h.kind == "reply" && r.kind == "REQ");
    if (!kind_ok) {
      report.findings.push_back(
          Finding{kDetHandlerKindDrift, h.file, h.line,
                  h.msg + " is declared " + r.kind + " in the spec but registered via " +
                      (h.kind == "notify"  ? "on_notify()"
                       : h.kind == "reply" ? "on_reply()"
                                           : "on()")});
    }
    // Reply continuations live in the *requesting* server (e.g. PM's
    // on_reply(VFS_PM_EXEC)): owner agreement applies only to request and
    // notify registrations.
    if (h.kind != "reply" && kServers.count(r.owner) != 0 && r.owner != h.server) {
      report.findings.push_back(
          Finding{kDetSpecOwnerDrift, h.file, h.line,
                  h.msg + " is owned by " + r.owner + " in the spec but " + h.server +
                      " registers its handler"});
    }
  }

  // Spec side: every row owned by a scanned server must have a handler of
  // the matching kind. "client"/"any" rows are delivered outside handler
  // dispatch (user processes, subscribers, the ServerCommon heartbeat).
  for (const SpecRow& r : report.spec) {
    if (kServers.count(r.owner) == 0) continue;
    if (servers_seen.count(r.owner) == 0) continue;
    const std::string want = r.kind == "NOTE" ? "notify" : "request";
    if (handled.count(r.name + ":" + want) != 0) continue;
    report.findings.push_back(
        Finding{kDetSpecMissingHandler, r.file, r.line,
                r.name + " is owned by " + r.owner + " in the spec but no " + want +
                    " handler is registered for it: dispatch would reject or drop it"});
  }
}

void resolve_and_predict(Report& report) {
  std::set<std::string> known_msgs;
  for (const MsgDef& m : report.messages) known_msgs.insert(m.name);

  std::map<std::string, const ClassEntry*> table;
  for (const ClassEntry& e : report.classification) table[e.msg] = &e;

  // Completeness: every protocol message must have an explicit entry, or the
  // conservative default in seep::Classification::get applies silently.
  for (const MsgDef& m : report.messages) {
    if (table.count(m.name) != 0) continue;
    report.findings.push_back(
        Finding{kDetUnclassifiedMsg, m.file, m.line,
                m.name + " (" + m.enum_name +
                    ") has no entry in build_classification(): it silently falls to the "
                    "conservative default (state-modifying, replyable)"});
  }
  // Staleness: every classification entry must name a live protocol message.
  for (const ClassEntry& e : report.classification) {
    if (known_msgs.count(e.msg) != 0) continue;
    report.findings.push_back(
        Finding{kDetStaleClassEntry, e.file, e.line,
                e.msg + " is classified but not defined in any *Msg protocol enum"});
  }

  // Resolve each site's SEEP class; deferred replies are state-modifying by
  // construction (ServerCommon::seep_deferred_reply hardwires the class).
  std::map<std::string, std::set<SeepClass>> classes_by_server;
  std::set<std::string> edge_keys;
  for (SendSite& s : report.sites) {
    if (s.kind == "explicit") {
      // Class was written literally at the site (window().on_outbound(...)).
    } else if (s.kind == "deferred_reply") {
      s.cls = SeepClass::kStateModifying;
      s.classified = true;
    } else if (s.msg != "<dynamic>") {
      auto it = table.find(s.msg);
      if (it != table.end()) {
        s.cls = it->second->cls;
        s.classified = true;
      } else {
        s.cls = SeepClass::kStateModifying;  // runtime conservative default
        report.findings.push_back(
            Finding{kDetUnclassifiedSend, s.file, s.line,
                    "send site uses " + s.msg +
                        " which has no explicit classification entry: the window decision "
                        "falls to the conservative default"});
      }
    } else {
      // Statically unresolvable non-deferred send: the analyzer cannot
      // verify its classification.
      report.findings.push_back(
          Finding{kDetUnclassifiedSend, s.file, s.line,
                  "cannot statically resolve the message type of this seep_" + s.kind +
                      " site; hoist the type into a `Message x = make_msg(TYPE, ...)` binding"});
    }
    // RCB sites have no recovery window, so they contribute channel edges
    // but must not generate window predictions for a pseudo-server "rcb".
    if (s.server != "rcb") classes_by_server[s.server].insert(s.cls);

    const std::string key = s.server + "->" + s.dst + ":" + s.msg;
    if (edge_keys.insert(key).second) {
      report.edges.push_back(ChannelEdge{s.server, s.dst, s.msg, s.cls});
    }
  }

  // Per-policy window predictions.
  for (const auto& [server, classes] : classes_by_server) {
    WindowPrediction p;
    p.server = server;
    p.classes_used.assign(classes.begin(), classes.end());
    for (int pi = 0; pi < kNumPolicies; ++pi) {
      const auto pol = static_cast<Policy>(pi);
      for (SeepClass c : classes) {
        if (policy_closes_window(pol, c)) p.may_close_by_seep[pi] = true;
        if (policy_taints_window(pol, c)) p.may_taint[pi] = true;
      }
    }
    report.predictions.push_back(std::move(p));
  }
}

}  // namespace osiris::analyze
