// osiris-analyze: result model shared by both passes.
//
// The analyzer mirrors the two artifacts the paper's LLVM passes produce:
//   Pass 1 (discipline lint)  — verifies that every store to recoverable
//     state flows through the ckpt:: wrappers (the store-instrumentation
//     substitution holds);
//   Pass 2 (SEEP analysis)    — extracts outbound call sites, rebuilds the
//     static inter-component channel graph, checks the hand-authored
//     classification for completeness, and predicts per-policy recovery
//     window behaviour.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace osiris::analyze {

// Detector identifiers (stable strings: used in findings, suppression
// comments, and the fixture expectations).
inline constexpr const char* kDetStateRawField = "state-raw-field";
inline constexpr const char* kDetStateMemfn = "state-memfn";
inline constexpr const char* kDetStateConstCast = "state-const-cast";
inline constexpr const char* kDetMutateEscape = "mutate-escape";
inline constexpr const char* kDetRawKernelSend = "raw-kernel-send";
inline constexpr const char* kDetUnclassifiedSend = "unclassified-send";
inline constexpr const char* kDetUnclassifiedMsg = "unclassified-msg";
inline constexpr const char* kDetStaleClassEntry = "stale-class-entry";
// Pass 3 (spec cross-check) detectors: the declarative OSIRIS_MSG_SPEC table
// vs the on()/on_notify()/on_reply() registrations in each server.
inline constexpr const char* kDetSpecMissingHandler = "spec-missing-handler";
inline constexpr const char* kDetHandlerWithoutSpec = "handler-without-spec";
inline constexpr const char* kDetHandlerKindDrift = "handler-kind-drift";
inline constexpr const char* kDetSpecOwnerDrift = "spec-owner-drift";

struct Finding {
  std::string detector;
  std::string file;
  int line = 0;
  std::string message;
};

/// Mirror of seep::SeepClass (the analyzer must not link the runtime; the
/// integration test cross-checks the two enums stay in sync).
enum class SeepClass : std::uint8_t { kNonStateModifying, kStateModifying, kRequesterScoped };

/// Mirror of the windowed subset of seep::Policy.
enum class Policy : std::uint8_t { kPessimistic, kEnhanced, kExtended };
inline constexpr int kNumPolicies = 3;

const char* seep_class_name(SeepClass c);
const char* policy_name(Policy p);

/// Static mirror of seep::policy_closes_window for the windowed policies.
[[nodiscard]] constexpr bool policy_closes_window(Policy p, SeepClass cls) {
  switch (p) {
    case Policy::kPessimistic:
      return true;
    case Policy::kEnhanced:
      return cls != SeepClass::kNonStateModifying;
    case Policy::kExtended:
      return cls == SeepClass::kStateModifying;
  }
  return true;
}

/// Static mirror of seep::policy_taints_window.
[[nodiscard]] constexpr bool policy_taints_window(Policy p, SeepClass cls) {
  return p == Policy::kExtended && cls == SeepClass::kRequesterScoped;
}

/// One enumerator of a `*Msg` protocol enum.
struct MsgDef {
  std::string name;
  std::uint32_t value = 0;
  std::string enum_name;  // e.g. "PmMsg"
  std::string file;
  int line = 0;
};

/// One `c.set(...)` entry of the hand-authored classification.
struct ClassEntry {
  std::string msg;  // enumerator name
  SeepClass cls = SeepClass::kStateModifying;
  bool replyable = true;
  std::string file;
  int line = 0;
};

/// One row of the declarative OSIRIS_MSG_SPEC table (servers/msg_spec.hpp).
struct SpecRow {
  std::string name;
  std::uint32_t value = 0;
  std::string owner;  // pm / vm / vfs / ds / rs / sys / client / any
  SeepClass cls = SeepClass::kStateModifying;
  std::string kind;  // REQ / SEND / NOTE
  int args = 0;
  bool text = false;
  std::string file;
  int line = 0;
};

/// One handler registration (`on(...)` / `on_notify(...)` / `on_reply(...)`)
/// in a server's register_handlers().
struct HandlerReg {
  std::string server;  // registering server
  std::string msg;     // message-type constant
  std::string kind;    // request / notify / reply
  std::string file;
  int line = 0;
};

/// One outbound SEEP call site in a server implementation.
struct SendSite {
  std::string server;  // pm / vm / vfs / ds / rs / sys
  std::string file;
  int line = 0;
  std::string kind;  // call / send / notify / deferred_reply
  std::string msg;   // enumerator name; "<dynamic>" when not statically known
  std::string dst;   // destination server, "client", or "<dynamic>"
  SeepClass cls = SeepClass::kStateModifying;
  bool classified = false;  // explicit classification entry found
};

/// A deduplicated edge of the static inter-component channel graph.
struct ChannelEdge {
  std::string from;
  std::string to;
  std::string msg;
  SeepClass cls = SeepClass::kStateModifying;
};

/// Per-server, per-policy static recovery-window prediction.
struct WindowPrediction {
  std::string server;
  /// Any outbound site whose class closes the window under the policy?
  bool may_close_by_seep[kNumPolicies] = {false, false, false};
  /// Any outbound site whose class taints the window under the policy?
  bool may_taint[kNumPolicies] = {false, false, false};
  /// Distinct SEEP classes seen across the server's outbound sites.
  std::vector<SeepClass> classes_used;
};

struct Report {
  std::vector<Finding> findings;
  std::vector<MsgDef> messages;
  std::vector<ClassEntry> classification;
  std::vector<SpecRow> spec;
  std::vector<HandlerReg> handlers;
  std::vector<SendSite> sites;
  std::vector<ChannelEdge> edges;
  std::vector<WindowPrediction> predictions;
  int files_scanned = 0;
  int state_structs_checked = 0;
  int state_fields_checked = 0;

  [[nodiscard]] std::map<std::string, int> findings_by_detector() const;
  [[nodiscard]] const WindowPrediction* prediction_for(const std::string& server) const;
};

}  // namespace osiris::analyze
