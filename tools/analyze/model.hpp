// osiris-analyze: result model shared by both passes.
//
// The analyzer mirrors the two artifacts the paper's LLVM passes produce:
//   Pass 1 (discipline lint)  — verifies that every store to recoverable
//     state flows through the ckpt:: wrappers (the store-instrumentation
//     substitution holds);
//   Pass 2 (SEEP analysis)    — extracts outbound call sites, rebuilds the
//     static inter-component channel graph, checks the hand-authored
//     classification for completeness, and predicts per-policy recovery
//     window behaviour.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace osiris::analyze {

// Detector identifiers (stable strings: used in findings, suppression
// comments, and the fixture expectations).
inline constexpr const char* kDetStateRawField = "state-raw-field";
inline constexpr const char* kDetStateMemfn = "state-memfn";
inline constexpr const char* kDetStateConstCast = "state-const-cast";
inline constexpr const char* kDetMutateEscape = "mutate-escape";
inline constexpr const char* kDetRawKernelSend = "raw-kernel-send";
inline constexpr const char* kDetUnclassifiedSend = "unclassified-send";
inline constexpr const char* kDetUnclassifiedMsg = "unclassified-msg";
inline constexpr const char* kDetStaleClassEntry = "stale-class-entry";
// Pass 3 (spec cross-check) detectors: the declarative OSIRIS_MSG_SPEC table
// vs the on()/on_notify()/on_reply() registrations in each server.
inline constexpr const char* kDetSpecMissingHandler = "spec-missing-handler";
inline constexpr const char* kDetHandlerWithoutSpec = "handler-without-spec";
inline constexpr const char* kDetHandlerKindDrift = "handler-kind-drift";
inline constexpr const char* kDetSpecOwnerDrift = "spec-owner-drift";
// Pass 4 (effects) detectors: flow-sensitive per-handler effect summaries
// over the interprocedural call graph.
inline constexpr const char* kDetMutateAfterSend = "mutate-after-send";
inline constexpr const char* kDetBlockingInHandler = "blocking-in-handler";
inline constexpr const char* kDetUnsummarizedCallee = "unsummarized-callee";
// Determinism lint (the PR 4 bug class: anything that makes traces or
// campaign merges depend on heap layout, wall-clock time or an unseeded RNG).
inline constexpr const char* kDetNondetPointerKey = "nondet-pointer-key";
inline constexpr const char* kDetNondetAddrHash = "nondet-addr-hash";
inline constexpr const char* kDetNondetWallClock = "nondet-wallclock";
inline constexpr const char* kDetNondetRand = "nondet-rand";

struct Finding {
  std::string detector;
  std::string file;
  int line = 0;
  std::string message;
};

/// Mirror of seep::SeepClass (the analyzer must not link the runtime; the
/// integration test cross-checks the two enums stay in sync).
enum class SeepClass : std::uint8_t { kNonStateModifying, kStateModifying, kRequesterScoped };

/// Mirror of the windowed subset of seep::Policy.
enum class Policy : std::uint8_t { kPessimistic, kEnhanced, kExtended };
inline constexpr int kNumPolicies = 3;

const char* seep_class_name(SeepClass c);
const char* policy_name(Policy p);

/// Static mirror of seep::policy_closes_window for the windowed policies.
[[nodiscard]] constexpr bool policy_closes_window(Policy p, SeepClass cls) {
  switch (p) {
    case Policy::kPessimistic:
      return true;
    case Policy::kEnhanced:
      return cls != SeepClass::kNonStateModifying;
    case Policy::kExtended:
      return cls == SeepClass::kStateModifying;
  }
  return true;
}

/// Static mirror of seep::policy_taints_window.
[[nodiscard]] constexpr bool policy_taints_window(Policy p, SeepClass cls) {
  return p == Policy::kExtended && cls == SeepClass::kRequesterScoped;
}

/// One enumerator of a `*Msg` protocol enum.
struct MsgDef {
  std::string name;
  std::uint32_t value = 0;
  std::string enum_name;  // e.g. "PmMsg"
  std::string file;
  int line = 0;
};

/// One `c.set(...)` entry of the hand-authored classification.
struct ClassEntry {
  std::string msg;  // enumerator name
  SeepClass cls = SeepClass::kStateModifying;
  bool replyable = true;
  std::string file;
  int line = 0;
};

/// One row of the declarative OSIRIS_MSG_SPEC table (servers/msg_spec.hpp).
struct SpecRow {
  std::string name;
  std::uint32_t value = 0;
  std::string owner;  // pm / vm / vfs / ds / rs / sys / client / any
  SeepClass cls = SeepClass::kStateModifying;
  std::string kind;  // REQ / SEND / NOTE
  int args = 0;
  bool text = false;
  std::string file;
  int line = 0;
};

/// One handler registration (`on(...)` / `on_notify(...)` / `on_reply(...)`)
/// in a server's register_handlers().
struct HandlerReg {
  std::string server;  // registering server
  std::string msg;     // message-type constant
  std::string kind;    // request / notify / reply
  std::string fn;      // handler member function (`&Pm::do_fork` -> "do_fork")
  std::string file;
  int line = 0;
};

/// One outbound SEEP call site in a server implementation.
struct SendSite {
  std::string server;  // pm / vm / vfs / ds / rs / sys
  std::string file;
  int line = 0;
  std::string kind;  // call / send / notify / deferred_reply
  std::string msg;   // enumerator name; "<dynamic>" when not statically known
  std::string dst;   // destination server, "client", or "<dynamic>"
  SeepClass cls = SeepClass::kStateModifying;
  bool classified = false;  // explicit classification entry found
};

/// A deduplicated edge of the static inter-component channel graph.
struct ChannelEdge {
  std::string from;
  std::string to;
  std::string msg;
  SeepClass cls = SeepClass::kStateModifying;
};

/// Per-server, per-policy static recovery-window prediction.
struct WindowPrediction {
  std::string server;
  /// Any outbound site whose class closes the window under the policy?
  bool may_close_by_seep[kNumPolicies] = {false, false, false};
  /// Any outbound site whose class taints the window under the policy?
  bool may_taint[kNumPolicies] = {false, false, false};
  /// Distinct SEEP classes seen across the server's outbound sites.
  std::vector<SeepClass> classes_used;
};

// --- Pass 4: interprocedural handler-effect summaries -----------------------

/// One element of a handler's flattened, flow-ordered effect sequence.
enum class EffectKind : std::uint8_t {
  kMutation,       // ckpt store mutation through a st()-rooted wrapper chain
  kSend,           // outbound SEEP (seep_* wrapper or explicit on_outbound)
  kBlocking,       // fiber suspend or synchronous blockdev wait
  kFomYield,       // resumable FOM park point (BlockMiss unwind): the request
                   // re-runs after the disk wait instead of blocking a fiber
  kYield,          // explicit window().on_yield() force-close marker
  kUnboundedLoop,  // `for (;;)` / `while (true)` in the flow
  kRecursiveCall,  // summarization hit a call cycle and cut it here
  kUnresolvedCall  // callee with no definition and no intrinsic model
};

const char* effect_kind_name(EffectKind k);

struct Effect {
  EffectKind kind = EffectKind::kMutation;
  std::string detail;  // mutation chain / blocking kind / callee name
  std::string msg;     // kSend: message constant ("<explicit>", "<dynamic>")
  std::string dst;     // kSend: destination server or "client"/"<domain>"
  SeepClass cls = SeepClass::kStateModifying;  // kSend only
  bool classified = false;                     // kSend: class statically known
  bool sync = false;                           // kSend: seep_call (blocks for reply)
  /// kBlocking only: an analyze-suppress(blocking-in-handler) comment covers
  /// the site (boot path, FOM sync fallback, …) — the point stays in the
  /// inventory but is not an open finding.
  bool suppressed = false;
  std::string file;
  int line = 0;
};

/// Effect summary + window prediction for one handler registration (one
/// (server, msg, kind) row of the dispatch table).
struct HandlerEffects {
  std::string server;
  std::string msg;
  std::string kind;  // request / notify / reply
  std::string fn;    // handler member function name
  std::string file;  // handler definition location (registration site when
  int line = 0;      // the body was not found)
  bool has_body = false;
  /// REQ-kind requests open the window at dispatch; notifications, replies
  /// and fire-and-forget sends never do (ServerCommon::dispatch).
  bool opens_window = false;
  std::vector<Effect> effects;  // flattened, in straight-line flow order
  bool recursive = false;
  bool has_unbounded_loop = false;
  int unresolved_callees = 0;
  int mutations_total = 0;
  /// Mutations ordered after the first window-closing send under the
  /// enhanced policy (the straight-line approximation of the paper's
  /// "dirtied past the point of no rollback" set).
  int mutations_after_close = 0;
  /// Handler-granularity window predictions (existential over the effect
  /// sequence — sound against branches skipping any prefix).
  bool may_close_by_seep[kNumPolicies] = {false, false, false};
  bool may_taint[kNumPolicies] = {false, false, false};
  bool may_close_by_yield = false;  // any blocking/yield effect in the flow
  /// Any resumable FOM park point (kFomYield) in the flow: under the FOM
  /// executor this handler can checkpoint mid-flight and resume after the
  /// disk wait instead of closing the window for good.
  bool may_park = false;
};

struct Report {
  std::vector<Finding> findings;
  std::vector<MsgDef> messages;
  std::vector<ClassEntry> classification;
  std::vector<SpecRow> spec;
  std::vector<HandlerReg> handlers;
  std::vector<SendSite> sites;
  std::vector<ChannelEdge> edges;
  std::vector<WindowPrediction> predictions;
  std::vector<HandlerEffects> handler_effects;
  int files_scanned = 0;
  int state_structs_checked = 0;
  int state_fields_checked = 0;

  [[nodiscard]] std::map<std::string, int> findings_by_detector() const;
  [[nodiscard]] const WindowPrediction* prediction_for(const std::string& server) const;
  [[nodiscard]] const HandlerEffects* effects_for(const std::string& server,
                                                  const std::string& msg,
                                                  const std::string& kind) const;
};

}  // namespace osiris::analyze
