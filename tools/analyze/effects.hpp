// Pass 4 — interprocedural handler-effect analysis.
//
// Rooted at every handler registration extracted by Pass 3, the pass walks
// the call graph and computes a flow-sensitive effect summary per handler
// row: the ordered sequence of ckpt store mutations, outbound sends (with
// their resolved SEEP class from Pass 2's site table), blocking operations
// (fiber suspends, synchronous blockdev waits), explicit yields and
// unbounded loops. From the summaries it derives:
//
//   * handler-granularity recovery-window predictions (tighter than the
//     Pass 2 per-server envelope: a handler with no outbound sends provably
//     cannot close its window by SEEP under any policy);
//   * the flow-sensitive detectors `mutate-after-send` (a ckpt mutation
//     ordered after the first window-closing send under the enhanced policy
//     — state dirtied past the point where rollback can cover it),
//     `blocking-in-handler` (the FOM-refactor worklist for ROADMAP item 2)
//     and `unsummarized-callee` (a reachable call the analyzer has no
//     definition or intrinsic model for — a soundness escape);
//   * the machine-readable handler_effects.json artifact (see DESIGN.md §13
//     for the schema).
//
// The determinism lint (also Pass 4, but file-local rather than
// call-graph-rooted) codifies the PR 4 bug class: pointer-keyed container
// iteration, address-based hashing, and wall-clock/rand use outside
// support/rng.hpp.
#pragma once

#include <vector>

#include "callgraph.hpp"
#include "lexer.hpp"
#include "model.hpp"

namespace osiris::analyze {

/// Summarize every handler registration in `report.handlers` over the call
/// graph, filling `report.handler_effects` and appending the flow-sensitive
/// findings. Requires Pass 2 resolution to have run (`report.sites` must
/// carry resolved SEEP classes).
void run_effects_pass(const std::vector<LexedFile>& files, const CallGraph& graph,
                      Report& report);

/// File-local determinism lint: one finding per nondeterminism source.
void run_determinism_pass(const LexedFile& f, std::vector<Finding>& findings);

}  // namespace osiris::analyze
