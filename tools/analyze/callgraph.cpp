#include "callgraph.hpp"

#include <set>

namespace osiris::analyze {

namespace {

using Tokens = std::vector<Token>;

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Keywords that look like `name (` but never denote a function definition
/// or a resolvable call.
bool is_control_keyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",     "for",        "while",   "switch",   "catch",         "return",
      "sizeof", "alignof",    "decltype", "noexcept", "static_assert", "throw",
      "new",    "delete",     "do",      "else",     "case",          "operator",
      "alignas",
  };
  return kw.count(s) != 0;
}

bool is_body_qualifier(const Token& t) {
  return t.is_ident("const") || t.is_ident("noexcept") || t.is_ident("override") ||
         t.is_ident("final") || t.is_ident("mutable");
}

/// Skip a `<...>` template-argument group with naive depth counting (the
/// lexer emits single-char '<'/'>', and no initializer list in the tree
/// contains shift operators).
std::size_t skip_angles(const Tokens& t, std::size_t i) {
  if (i >= t.size() || !t[i].is("<")) return i;
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i].is("<")) ++depth;
    if (t[i].is(">") && --depth == 0) return i + 1;
    if (t[i].is(";")) break;  // runaway: not a template group
  }
  return kNone;
}

/// From a constructor's `:` token, walk the member initializer list; returns
/// the index of the body '{' or kNone if this was not an initializer list
/// (e.g. the `:` of a ternary).
std::size_t skip_init_list(const Tokens& t, std::size_t i) {
  ++i;  // past ':'
  while (i < t.size()) {
    if (t[i].kind != Tok::kIdent) return kNone;
    ++i;
    if (i < t.size() && t[i].is("<")) {
      i = skip_angles(t, i);
      if (i == kNone) return kNone;
    }
    if (i >= t.size()) return kNone;
    if (t[i].is("(")) {
      i = cg_match_forward(t, i, "(", ")") + 1;
    } else if (t[i].is("{")) {
      i = cg_match_forward(t, i, "{", "}") + 1;
    } else {
      return kNone;
    }
    if (i < t.size() && t[i].is(",")) {
      ++i;
      continue;
    }
    return i < t.size() && t[i].is("{") ? i : kNone;
  }
  return kNone;
}

/// Collect the call names inside cothread::Fiber constructor lambdas:
/// `std::make_unique<cothread::Fiber>([caps] { ... })` — everything the
/// fiber body calls becomes a "fiber entry" for its file.
void collect_fiber_entries(const LexedFile& f, CallGraph& g) {
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!t[i].is_ident("Fiber")) continue;
    // Constructor-call shape: `Fiber > (` (make_unique) or `Fiber (`.
    std::size_t open = kNone;
    if (t[i + 1].is(">") && t[i + 2].is("(")) open = i + 2;
    if (t[i + 1].is("(")) open = i + 1;
    if (open == kNone) continue;
    const std::size_t close = cg_match_forward(t, open, "(", ")");
    // The lambda body: first '{' after the capture list inside the args.
    for (std::size_t j = open + 1; j < close; ++j) {
      if (!t[j].is("[")) continue;
      std::size_t k = cg_match_forward(t, j, "[", "]") + 1;
      if (k < close && t[k].is("(")) k = cg_match_forward(t, k, "(", ")") + 1;
      if (k >= close || !t[k].is("{")) break;
      const std::size_t body_end = cg_match_forward(t, k, "{", "}");
      for (std::size_t c = k + 1; c < body_end; ++c) {
        if (t[c].kind != Tok::kIdent || c + 1 >= t.size() || !t[c + 1].is("(")) continue;
        if (is_control_keyword(t[c].text)) continue;
        g.fiber_entries[f.path].push_back(t[c].text);
      }
      break;
    }
    i = close;
  }
}

}  // namespace

std::size_t cg_match_forward(const Tokens& t, std::size_t open, const char* op, const char* cl) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].is(op)) ++depth;
    if (t[i].is(cl) && --depth == 0) return i;
  }
  return t.size();
}

CallGraph build_call_graph(const std::vector<LexedFile>& files) {
  CallGraph g;
  for (const LexedFile& f : files) {
    const Tokens& t = f.tokens;
    for (std::size_t i = 1; i + 1 < t.size(); ++i) {
      if (t[i].kind != Tok::kIdent || !t[i + 1].is("(")) continue;
      if (is_control_keyword(t[i].text)) continue;
      // Member access is a call, never a definition.
      if (t[i - 1].is(".") || t[i - 1].is("->")) continue;
      // `Type name(args);` declarations/ctor-calls: previous token is an
      // identifier or a closing angle bracket of its type.
      const std::size_t close = cg_match_forward(t, i + 1, "(", ")");
      if (close >= t.size()) continue;

      std::size_t j = close + 1;
      while (j < t.size() && is_body_qualifier(t[j])) {
        ++j;
        if (j < t.size() && t[j].is("(")) j = cg_match_forward(t, j, "(", ")") + 1;  // noexcept(...)
      }
      std::size_t body = kNone;
      if (j < t.size() && t[j].is("{")) {
        body = j;
      } else if (j < t.size() && t[j].is(":")) {
        body = skip_init_list(t, j);
      }
      if (body == kNone || body >= t.size()) continue;

      FuncDef d;
      d.name = t[i].text;
      if (i >= 2 && t[i - 1].is("::") && t[i - 2].kind == Tok::kIdent) d.qual = t[i - 2].text;
      d.file = &f;
      d.line = t[i].line;
      d.body_begin = body;
      d.body_end = cg_match_forward(t, body, "{", "}");
      g.by_name[d.name].push_back(g.funcs.size());
      g.funcs.push_back(std::move(d));
      // Do not skip the body: in-class definitions nest inside class braces,
      // and inner candidates are filtered by the same rules.
    }
    collect_fiber_entries(f, g);
  }
  return g;
}

}  // namespace osiris::analyze
