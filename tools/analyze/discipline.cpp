#include "discipline.hpp"

#include <algorithm>
#include <string_view>

namespace osiris::analyze {

namespace {

using Tokens = std::vector<Token>;

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

void add_finding(const LexedFile& f, std::vector<Finding>& out, const char* detector, int line,
                 std::string message) {
  if (f.suppressed(detector, line)) return;
  out.push_back(Finding{detector, f.path, line, std::move(message)});
}

/// Index of the matching closer for the opener at `open` ("()" or "{}"),
/// or tokens.size() if unbalanced.
std::size_t match_forward(const Tokens& t, std::size_t open, const char* op, const char* cl) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].is(op)) ++depth;
    if (t[i].is(cl) && --depth == 0) return i;
  }
  return t.size();
}

/// Does tokens[from..to) contain the call pattern `st ( )` or the
/// identifier `state_` (the two spellings of the recoverable data section)?
bool touches_state(const Tokens& t, std::size_t from, std::size_t to) {
  for (std::size_t i = from; i < to; ++i) {
    if (t[i].is_ident("state_")) return true;
    if (t[i].is_ident("st") && i + 2 < to && t[i + 1].is("(") && t[i + 2].is(")")) return true;
  }
  return false;
}

// --- state-raw-field ---------------------------------------------------------

/// Check one member declaration of a State struct: tokens [from..semi).
/// Returns true if the declaration was a data field (counted).
bool check_state_field(const LexedFile& f, const Tokens& t, std::size_t from, std::size_t semi,
                       const std::string& struct_name, std::vector<Finding>& out) {
  if (from >= semi) return false;
  static constexpr std::string_view kSkipLead[] = {"using", "static_assert", "friend",
                                                   "enum",  "struct",        "class",
                                                   "public", "private",      "protected"};
  for (std::string_view s : kSkipLead) {
    if (t[from].is_ident(s)) return false;
  }
  // A declarator containing a parenthesis at angle-depth 0 is a function
  // (or constructor) — State structs should not have them, but skip rather
  // than misreport.
  int angle = 0;
  for (std::size_t i = from; i < semi; ++i) {
    if (t[i].is("<")) ++angle;
    if (t[i].is(">")) angle = std::max(0, angle - 1);
    if (angle == 0 && t[i].is("(")) return false;
    if (angle == 0 && t[i].is("=")) break;  // initializer: type tokens end here
  }
  // Accept `ckpt::X<...>` and `osiris::ckpt::X<...>` field types — the
  // wrapper family (Cell/Array/Table/...) and the PageStore-backed
  // ckpt::PagedTable (DESIGN.md §17): its stores route through
  // Context::log_write to the page tier, so it is recoverable state, not a
  // bypass.
  std::size_t p = from;
  if (t[p].is_ident("osiris") && p + 1 < semi && t[p + 1].is("::")) p += 2;
  const bool is_wrapper = t[p].is_ident("ckpt") && p + 1 < semi && t[p + 1].is("::");
  if (!is_wrapper) {
    // Field name: last identifier before ';', '=' or '{'.
    std::string field = "?";
    for (std::size_t i = from; i < semi; ++i) {
      if (t[i].is("=") || t[i].is("{")) break;
      if (t[i].kind == Tok::kIdent) field = t[i].text;
    }
    add_finding(f, out, kDetStateRawField, t[from].line,
                struct_name + "::" + field +
                    " is not a ckpt:: wrapper type: stores to it bypass the undo log "
                    "(unrecoverable state in the recoverable data section)");
  }
  return true;
}

void scan_state_structs(const LexedFile& f, std::vector<Finding>& out, DisciplineStats& stats) {
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!t[i].is_ident("struct")) continue;
    if (t[i + 1].kind != Tok::kIdent || !ends_with(t[i + 1].text, "State")) continue;
    // Find the opening brace (skip base clauses; a forward declaration has
    // ';' before '{').
    std::size_t open = i + 2;
    while (open < t.size() && !t[open].is("{") && !t[open].is(";")) ++open;
    if (open >= t.size() || t[open].is(";")) continue;
    const std::size_t close = match_forward(t, open, "{", "}");
    ++stats.state_structs;
    const std::string struct_name = t[i + 1].text;

    // Walk the member declarations at depth 1.
    std::size_t p = open + 1;
    while (p < close) {
      // Access specifier `public:` etc.
      if (t[p].kind == Tok::kIdent && p + 1 < close && t[p + 1].is(":") &&
          (t[p].is_ident("public") || t[p].is_ident("private") || t[p].is_ident("protected"))) {
        p += 2;
        continue;
      }
      // Find the end of this declaration: ';' at depth 0, skipping nested
      // braces (default member initializers `{}` and nested types).
      std::size_t q = p;
      bool had_body = false;
      while (q < close) {
        if (t[q].is("{")) {
          q = match_forward(t, q, "{", "}");
          had_body = true;
          ++q;
          continue;
        }
        if (t[q].is("(")) {
          q = match_forward(t, q, "(", ")") + 1;
          continue;
        }
        if (t[q].is(";")) break;
        ++q;
      }
      if (p < q && !(had_body && q >= close)) {
        if (check_state_field(f, t, p, std::min(q, close), struct_name, out)) {
          ++stats.state_fields;
        }
      }
      p = q + 1;
    }
    i = close;
  }
}

// --- state-memfn / state-const-cast -----------------------------------------

void scan_mem_functions(const LexedFile& f, std::vector<Finding>& out) {
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    const bool is_memfn =
        t[i].is("memcpy") || t[i].is("memset") || t[i].is("memmove");
    if (!is_memfn || !t[i + 1].is("(")) continue;
    const std::size_t open = i + 1;
    const std::size_t close = match_forward(t, open, "(", ")");
    // First argument: up to the first top-level comma.
    int depth = 0;
    std::size_t arg_end = close;
    for (std::size_t j = open + 1; j < close; ++j) {
      if (t[j].is("(") || t[j].is("{") || t[j].is("[")) ++depth;
      if (t[j].is(")") || t[j].is("}") || t[j].is("]")) --depth;
      if (depth == 0 && t[j].is(",")) {
        arg_end = j;
        break;
      }
    }
    if (touches_state(t, open + 1, arg_end)) {
      add_finding(f, out, kDetStateMemfn, t[i].line,
                  t[i].text + " writes into the recoverable data section: the raw store "
                              "bypasses ckpt:: undo-log instrumentation");
    }
  }
}

void scan_const_casts(const LexedFile& f, std::vector<Finding>& out) {
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].is_ident("const_cast")) continue;
    // const_cast< T >( expr )
    std::size_t open = i + 1;
    while (open < t.size() && !t[open].is("(")) ++open;
    if (open >= t.size()) continue;
    const std::size_t close = match_forward(t, open, "(", ")");
    if (touches_state(t, open + 1, close)) {
      add_finding(f, out, kDetStateConstCast, t[i].line,
                  "const_cast launders read-only state access into unlogged mutable access");
    }
  }
}

// --- mutate-escape -----------------------------------------------------------

void scan_mutate_escapes(const LexedFile& f, std::vector<Finding>& out) {
  const Tokens& t = f.tokens;
  std::size_t stmt_start = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].is(";") || t[i].is("{") || t[i].is("}")) {
      stmt_start = i + 1;
      continue;
    }
    if (!t[i].is_ident("mutate") || i + 1 >= t.size() || !t[i + 1].is("(") || i == 0 ||
        !t[i - 1].is(".")) {
      continue;
    }
    // Inspect the statement prefix [stmt_start .. i).
    bool returned = false;
    bool address_taken = false;
    bool static_bound = false;
    for (std::size_t j = stmt_start; j < i; ++j) {
      if (t[j].is_ident("return")) returned = true;
      if (t[j].is_ident("static")) static_bound = true;
      if (t[j].is("=") && j + 1 < i && t[j + 1].is("&")) address_taken = true;
    }
    if (returned) {
      add_finding(f, out, kDetMutateEscape, t[i].line,
                  "mutate() reference returned from function: the caller can store to state "
                  "after the undo-log record was taken");
    } else if (address_taken) {
      add_finding(f, out, kDetMutateEscape, t[i].line,
                  "address of mutate() result stored: the pointer outlives the statement and "
                  "later stores through it are unlogged");
    } else if (static_bound) {
      add_finding(f, out, kDetMutateEscape, t[i].line,
                  "mutate() reference bound to a static: it survives checkpoint resets, so "
                  "later stores through it are unlogged");
    }
  }
}

// --- raw-kernel-send ---------------------------------------------------------

void scan_raw_kernel_sends(const LexedFile& f, std::vector<Finding>& out) {
  static constexpr std::string_view kIpcVerbs[] = {"send", "call", "notify", "reply_to"};
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    bool is_verb = false;
    for (std::string_view v : kIpcVerbs) {
      if (t[i].is(v)) is_verb = true;
    }
    if (!is_verb || !t[i + 1].is("(") || i == 0) continue;
    // Receiver expression immediately before: `kernel_.`, `kern().`, or any
    // pointer deref `X->`.
    bool raw = false;
    if (t[i - 1].is("->")) raw = true;
    if (t[i - 1].is(".") && i >= 2 && t[i - 2].is_ident("kernel_")) raw = true;
    if (t[i - 1].is(".") && i >= 4 && t[i - 2].is(")") && t[i - 3].is("(") &&
        t[i - 4].is_ident("kern")) {
      raw = true;
    }
    if (raw) {
      add_finding(f, out, kDetRawKernelSend, t[i].line,
                  "outbound IPC (" + t[i].text +
                      ") bypasses the seep_* wrappers: the recovery window will not observe "
                      "this cross-component dependency");
    }
  }
}

}  // namespace

DisciplineStats run_discipline_pass(const LexedFile& f, const DisciplineOptions& opt,
                                    std::vector<Finding>& findings) {
  DisciplineStats stats;
  scan_state_structs(f, findings, stats);
  scan_mem_functions(f, findings);
  scan_const_casts(f, findings);
  scan_mutate_escapes(f, findings);
  if (opt.check_raw_kernel_sends) scan_raw_kernel_sends(f, findings);
  return stats;
}

}  // namespace osiris::analyze
