#include "lexer.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace osiris::analyze {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }

/// Harvest `analyze-suppress(detector): reason` from a comment body.
/// Registers at the comment's own line (trailing-comment idiom) and queues
/// the detectors in `pending` so the tokenizer can also attach them to the
/// next code line (comment-above idiom, however many comment lines tall).
void harvest_suppressions(std::string_view comment, int line, LexedFile& out,
                          std::vector<std::string>& pending) {
  constexpr std::string_view kTag = "analyze-suppress(";
  std::size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string_view::npos) {
    pos += kTag.size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string_view::npos) break;
    std::string detector(comment.substr(pos, close - pos));
    // Trim surrounding whitespace.
    while (!detector.empty() && detector.front() == ' ') detector.erase(detector.begin());
    while (!detector.empty() && detector.back() == ' ') detector.pop_back();
    if (!detector.empty()) {
      out.suppressions[line].push_back(detector);
      pending.push_back(detector);
    }
    pos = close;
  }
}

}  // namespace

bool LexedFile::suppressed(const std::string& detector, int line) const {
  // A suppression covers its own line and the next one (comment-above idiom).
  for (int l : {line, line - 1}) {
    auto it = suppressions.find(l);
    if (it == suppressions.end()) continue;
    for (const std::string& d : it->second) {
      if (d == detector || d == "*") return true;
    }
  }
  return false;
}

LexedFile lex_source(std::string path, std::string_view src) {
  LexedFile out;
  out.path = std::move(path);
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  std::vector<std::string> pending;  // suppressions waiting for the next code line
  auto push = [&](Tok kind, std::string text) {
    if (!pending.empty()) {
      auto& dst = out.suppressions[line];
      dst.insert(dst.end(), pending.begin(), pending.end());
      pending.clear();
    }
    out.tokens.push_back(Token{kind, std::move(text), line});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t end = src.find('\n', i);
      const std::size_t stop = end == std::string_view::npos ? n : end;
      harvest_suppressions(src.substr(i, stop - i), line, out, pending);
      i = stop;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t end = src.find("*/", i + 2);
      const std::size_t stop = end == std::string_view::npos ? n : end + 2;
      harvest_suppressions(src.substr(i, stop - i), line, out, pending);
      for (std::size_t j = i; j < stop; ++j) {
        if (src[j] == '\n') ++line;
      }
      i = stop;
      continue;
    }
    // Preprocessor directive: skip to end of line (honouring continuations) —
    // except the OSIRIS_MSG_SPEC X-macro table, the protocol's single source
    // of truth, whose body the spec pass must see. For it only the
    // `#define OSIRIS_MSG_SPEC(X)` header is skipped; the row invocations lex
    // as ordinary tokens (the continuation backslashes are eaten below).
    if (c == '#') {
      constexpr std::string_view kSpecDefine = "define OSIRIS_MSG_SPEC(";
      std::size_t j = i + 1;
      while (j < n && (src[j] == ' ' || src[j] == '\t')) ++j;
      if (src.substr(j).substr(0, kSpecDefine.size()) == kSpecDefine) {
        const std::size_t close = src.find(')', j);
        if (close != std::string_view::npos) {
          i = close + 1;
          continue;
        }
      }
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    // Line-continuation backslash (inside a lexed macro body): whitespace.
    if (c == '\\' && i + 1 < n && src[i + 1] == '\n') {
      ++i;
      continue;
    }
    // String literal.
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '"') {
        if (src[j] == '\\') ++j;
        ++j;
      }
      push(Tok::kString, std::string(src.substr(i, j + 1 - i)));
      i = j + 1;
      continue;
    }
    // Char literal.
    if (c == '\'') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '\'') {
        if (src[j] == '\\') ++j;
        ++j;
      }
      push(Tok::kString, std::string(src.substr(i, j + 1 - i)));
      i = j + 1;
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(src[j])) ++j;
      push(Tok::kIdent, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    // Number (decimal / hex / suffixes; precise value parsing happens later).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(src[j]) || src[j] == '\'' ||
                       ((src[j] == '+' || src[j] == '-') && (src[j - 1] == 'e' || src[j - 1] == 'E')))) {
        ++j;
      }
      push(Tok::kNumber, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    // Two-char operators the passes care about; everything else single char.
    if (i + 1 < n) {
      const std::string_view two = src.substr(i, 2);
      if (two == "::" || two == "->") {
        push(Tok::kPunct, std::string(two));
        i += 2;
        continue;
      }
    }
    push(Tok::kPunct, std::string(1, c));
    ++i;
  }
  return out;
}

LexedFile lex_file(const std::string& path, std::string display_path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("osiris-analyze: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  // A mid-stream read failure leaves a truncated buffer that would lex as a
  // shorter (possibly "clean") file; treat it the same as an unopenable one.
  if (in.bad()) throw std::runtime_error("osiris-analyze: read failed for " + path);
  const std::string src = ss.str();
  // An empty input is never a legitimate source or fixture file — it is a
  // stray artifact (touch, failed checkout) that would silently analyze as
  // "clean"; fail loudly instead.
  if (src.empty()) throw std::runtime_error("osiris-analyze: empty input " + path);
  return lex_source(display_path.empty() ? path : std::move(display_path), src);
}

}  // namespace osiris::analyze
