#include "effects.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>

namespace osiris::analyze {

namespace {

using Tokens = std::vector<Token>;

constexpr std::size_t kNone = static_cast<std::size_t>(-1);
constexpr std::size_t kMaxFlatEffects = 50000;  // runaway-summary backstop
constexpr int kMaxDepth = 64;

// --- intrinsic model ---------------------------------------------------------
//
// The analyzer models a small set of runtime primitives directly instead of
// summarizing their bodies; everything the summaries claim about windows
// derives from these.

/// seep_* wrappers and the explicit Window hook: resolved through Pass 2's
/// per-(file,line) site table, never through their ServerCommon definitions.
bool is_send_intrinsic(const std::string& s) {
  return s == "seep_call" || s == "seep_send" || s == "seep_notify" ||
         s == "seep_notify_batch" || s == "seep_deferred_reply" || s == "on_outbound";
}

/// Deferred-execution primitives: their lambda argument runs outside the
/// current handler activation (device completion fires VFS_DEV_DONE, clock
/// callbacks run from the instance pump), so the whole argument range is
/// excluded from this handler's straight-line flow.
bool is_deferred_intrinsic(const std::string& s) {
  return s == "submit_read" || s == "submit_write" || s == "call_after";
}

/// Plain-name calls that are macros, message factories or libc/runtime
/// helpers with no effect on recoverable state, windows or scheduling.
/// Anything *not* on this list and not resolvable to a scanned definition
/// becomes an `unsummarized-callee` escape.
bool is_benign_call(const std::string& s) {
  static const std::set<std::string> benign = {
      // assertion / logging / tracing / fault-injection macros
      // (preprocessor-stripped, so they can never resolve to a definition)
      "SRV_CHECK", "OSIRIS_ASSERT", "OSIRIS_PANIC", "OSIRIS_LOG", "OSIRIS_TRACE",
      "OSIRIS_DEBUG", "OSIRIS_INFO", "OSIRIS_WARN", "OSIRIS_ERROR", "OSIRIS_TRACE_EVENT",
      "FI_BLOCK", "FI_VALUE", "FI_BRANCH", "assert",
      // message factories and spec lookups (pure constructors / table reads)
      "make_msg", "make_reply", "encode", "encode_text", "decode", "msg_label", "msg_name",
      "find_msg_spec",
      // libc-ish helpers occasionally used unqualified
      "memcpy", "memset", "memcmp", "strlen", "snprintf", "min", "max", "move", "swap",
      // nondeterminism sources: the determinism lint owns these
      "rand", "srand", "random", "time",
  };
  return benign.count(s) != 0;
}

/// Mutating members of the ckpt:: wrapper chain rooted at st(). Everything
/// else on the chain is a read accessor.
bool is_mutating_member(const std::string& s) {
  static const std::set<std::string> mut = {"mutate", "alloc", "free",       "set",
                                            "fill",   "clear", "store_range"};
  return mut.count(s) != 0;
}

bool is_stmt_keyword(const std::string& s) {
  return s == "return" || s == "throw" || s == "else" || s == "do" || s == "case";
}

bool is_control_keyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",     "for",     "while",    "switch",   "catch",         "return",
      "sizeof", "alignof", "decltype", "noexcept", "static_assert", "throw",
      "new",    "delete",  "do",       "else",     "case",          "operator",
      "alignas",
  };
  return kw.count(s) != 0;
}

// --- local event extraction --------------------------------------------------

/// One event of a function body's straight-line token walk: either a ready
/// Effect or a call to resolve during flattening.
struct LocalEvent {
  bool is_call = false;
  Effect eff;  // valid when !is_call

  std::string name;  // callee (is_call)
  bool is_resume = false;
  bool member = false;       // receiver via `.` / `->`
  std::string scope_root;    // `X` for `X::..::name(`, empty otherwise
  int line = 0;
};

/// `for (` with an empty condition clause, or `while (true|1)`.
bool is_unbounded_loop(const Tokens& t, std::size_t i, std::size_t* out_end) {
  if (t[i].is_ident("while") && i + 3 < t.size() && t[i + 1].is("(") &&
      (t[i + 2].is_ident("true") || t[i + 2].is("1")) && t[i + 3].is(")")) {
    *out_end = i + 3;
    return true;
  }
  if (!t[i].is_ident("for") || i + 1 >= t.size() || !t[i + 1].is("(")) return false;
  const std::size_t close = cg_match_forward(t, i + 1, "(", ")");
  if (close >= t.size()) return false;
  std::size_t first_semi = kNone;
  int depth = 0;
  for (std::size_t j = i + 2; j < close; ++j) {
    if (t[j].is("(") || t[j].is("[") || t[j].is("{")) ++depth;
    if (t[j].is(")") || t[j].is("]") || t[j].is("}")) --depth;
    if (depth != 0 || !t[j].is(";")) continue;
    if (first_semi == kNone) {
      first_semi = j;
    } else {
      // Condition clause is tokens (first_semi, j): empty means unbounded.
      if (j == first_semi + 1) {
        *out_end = i + 1;  // do not skip the header: init/step may hold calls
        return true;
      }
      return false;
    }
  }
  return false;
}

/// Scan a `st()`-rooted wrapper chain starting at the `st` identifier.
/// Records a mutation event when the chain passes through a mutating member
/// call or ends in an assignment/compound-assignment/increment. Returns the
/// index the main walk should continue from (never skips argument tokens, so
/// calls inside `mutate(...)`/`for_each(...)` arguments are still seen).
std::size_t scan_state_chain(const Tokens& t, std::size_t i, const LexedFile& f,
                             std::vector<LocalEvent>& out) {
  std::string path = "st()";
  std::size_t j = i + 3;  // past `st ( )`
  bool has_field = false;
  while (j + 1 < t.size()) {
    if ((t[j].is(".") || t[j].is("->")) && t[j + 1].kind == Tok::kIdent) {
      const std::string& name = t[j + 1].text;
      if (j + 2 < t.size() && t[j + 2].is("(")) {
        if (is_mutating_member(name)) {
          LocalEvent ev;
          ev.eff.kind = EffectKind::kMutation;
          ev.eff.detail = path + "." + name;
          ev.eff.file = f.path;
          ev.eff.line = t[j + 1].line;
          out.push_back(std::move(ev));
        }
        // Accessor or mutator call: stop the chain here and let the main
        // walk descend into the argument tokens (for_each lambdas execute
        // synchronously and must contribute their effects in place).
        return j + 3;
      }
      path += "." + name;
      has_field = true;
      j += 2;
      continue;
    }
    if (t[j].is("[")) {
      const std::size_t close = cg_match_forward(t, j, "[", "]");
      if (close >= t.size()) return j + 1;
      path += "[]";
      j = close + 1;
      continue;
    }
    break;
  }
  if (has_field && j + 1 < t.size()) {
    // Compound operators lex as single-char punctuation ('+','=' ...).
    const bool assign = (t[j].is("=") && !t[j + 1].is("=")) ||
                        ((t[j].is("+") || t[j].is("-") || t[j].is("|") || t[j].is("&") ||
                          t[j].is("^") || t[j].is("*") || t[j].is("/") || t[j].is("%")) &&
                         t[j + 1].is("=")) ||
                        (t[j].is("+") && t[j + 1].is("+")) || (t[j].is("-") && t[j + 1].is("-"));
    if (assign) {
      LocalEvent ev;
      ev.eff.kind = EffectKind::kMutation;
      ev.eff.detail = path + " =";
      ev.eff.file = f.path;
      ev.eff.line = t[j].line;
      out.push_back(std::move(ev));
    }
  }
  return j;
}

/// Per-(file,line) index of Pass 2's resolved send sites.
using SiteIndex = std::map<std::string, std::map<int, const SendSite*>>;

/// Extract the ordered local events of one function body.
std::vector<LocalEvent> extract_local_events(const FuncDef& d, const SiteIndex& sites) {
  std::vector<LocalEvent> out;
  const Tokens& t = d.file->tokens;
  std::size_t i = d.body_begin + 1;
  while (i < d.body_end && i + 1 < t.size()) {
    const Token& tok = t[i];
    if (tok.kind != Tok::kIdent) {
      ++i;
      continue;
    }

    std::size_t loop_end = kNone;
    if (is_unbounded_loop(t, i, &loop_end)) {
      LocalEvent ev;
      ev.eff.kind = EffectKind::kUnboundedLoop;
      ev.eff.detail = tok.text == "for" ? "for(;;)" : "while(true)";
      ev.eff.file = d.file->path;
      ev.eff.line = tok.line;
      out.push_back(std::move(ev));
      i = loop_end + 1;
      continue;
    }

    if (tok.is_ident("st") && t[i + 1].is("(") && i + 2 < d.body_end && t[i + 2].is(")")) {
      i = scan_state_chain(t, i, *d.file, out);
      continue;
    }

    if (!t[i + 1].is("(") || is_control_keyword(tok.text)) {
      ++i;
      continue;
    }
    const bool member = i > 0 && (t[i - 1].is(".") || t[i - 1].is("->"));
    const bool scoped = i > 0 && t[i - 1].is("::");

    // `Type name(args)` declarations: previous token is a plain identifier
    // (not a statement keyword) or the `>` closing its template arguments.
    if (!member && !scoped && i > 0 &&
        ((t[i - 1].kind == Tok::kIdent && !is_stmt_keyword(t[i - 1].text)) || t[i - 1].is(">"))) {
      ++i;
      continue;
    }

    const std::string& name = tok.text;

    // Intrinsics first: they shadow any definition the graph may hold (the
    // seep_* wrapper bodies in ServerBase must not be summarized into their
    // callers — the site table is authoritative).
    if (is_send_intrinsic(name)) {
      auto fit = sites.find(d.file->path);
      if (fit != sites.end()) {
        auto lit = fit->second.find(tok.line);
        if (lit != fit->second.end()) {
          const SendSite* s = lit->second;
          LocalEvent ev;
          ev.eff.kind = EffectKind::kSend;
          ev.eff.detail = s->kind;
          ev.eff.msg = s->msg;
          ev.eff.dst = s->dst;
          ev.eff.cls = s->cls;
          ev.eff.classified = s->classified;
          ev.eff.sync = s->kind == "call";
          ev.eff.file = d.file->path;
          ev.eff.line = tok.line;
          out.push_back(std::move(ev));
        }
      }
      // No site entry: this is the wrapper definition itself (or a line the
      // seep pass rejected) — nothing to record.
      ++i;
      continue;
    }
    if (name == "on_yield") {
      LocalEvent ev;
      ev.eff.kind = EffectKind::kYield;
      ev.eff.detail = "on_yield";
      ev.eff.file = d.file->path;
      ev.eff.line = tok.line;
      out.push_back(std::move(ev));
      ++i;
      continue;
    }
    if (name == "suspend" || name == "read_now") {
      LocalEvent ev;
      ev.eff.kind = EffectKind::kBlocking;
      ev.eff.detail = name == "suspend" ? "fiber-suspend" : "blockdev-wait";
      ev.eff.file = d.file->path;
      ev.eff.line = tok.line;
      out.push_back(std::move(ev));
      ++i;
      continue;
    }
    if (name == "BlockMiss") {
      // `throw fs::BlockMiss(bno)`: the FOM executor's resumable park point.
      // The dispatch returns (no fiber is held), the request re-runs when the
      // disk completion arrives — a state transition, not a blocking wait.
      LocalEvent ev;
      ev.eff.kind = EffectKind::kFomYield;
      ev.eff.detail = "fom-miss";
      ev.eff.file = d.file->path;
      ev.eff.line = tok.line;
      out.push_back(std::move(ev));
      ++i;
      continue;
    }
    if (is_deferred_intrinsic(name)) {
      const std::size_t close = cg_match_forward(t, i + 1, "(", ")");
      i = close >= t.size() ? i + 1 : close + 1;
      continue;
    }
    if (name == "resume") {
      LocalEvent ev;
      ev.is_call = true;
      ev.is_resume = true;
      ev.name = name;
      ev.line = tok.line;
      out.push_back(std::move(ev));
      ++i;
      continue;
    }
    if (is_benign_call(name)) {
      ++i;
      continue;
    }

    LocalEvent ev;
    ev.is_call = true;
    ev.name = name;
    ev.member = member;
    ev.line = tok.line;
    if (scoped) {
      // Walk the qualifier chain back to its root: `a::b::name(`.
      std::size_t k = i;
      while (k >= 2 && t[k - 1].is("::") && t[k - 2].kind == Tok::kIdent) k -= 2;
      ev.scope_root = t[k].text;
    }
    out.push_back(std::move(ev));
    ++i;
  }
  return out;
}

// --- interprocedural flattening ----------------------------------------------

struct Flat {
  std::vector<Effect> effects;
};

class Summarizer {
 public:
  Summarizer(const CallGraph& g, SiteIndex sites) : g_(g), sites_(std::move(sites)) {
    local_.resize(g.funcs.size());
    flat_.resize(g.funcs.size());
  }

  const Flat& flatten(std::size_t fi) { return flatten_impl(fi, 0); }

  /// Definition lookup with same-file preference (plain calls bind to the
  /// current translation unit first; member calls union over all classes).
  ///
  /// Resolution is layer-aware: servers reach the OS personality layer
  /// (src/os: syscall wrappers, the monolithic baseline, the shell) only via
  /// IPC, never by direct call, so a name-union edge from server/fs code
  /// into src/os is always spurious (e.g. `minifs_.read(...)` must not pull
  /// in `Sys::read`'s sendrec loop). Callers inside src/os keep the full
  /// union.
  std::vector<std::size_t> resolve_targets(const std::string& name, const LexedFile* from,
                                           bool prefer_same_file) const {
    const std::vector<std::size_t>* all = g_.resolve(name);
    if (all == nullptr) return {};
    const bool from_os = from != nullptr && from->path.find("src/os/") != std::string::npos;
    std::vector<std::size_t> eligible;
    for (std::size_t fi : *all) {
      const std::string& p = g_.funcs[fi].file->path;
      if (!from_os && p.find("src/os/") != std::string::npos) continue;
      eligible.push_back(fi);
    }
    if (prefer_same_file) {
      std::vector<std::size_t> same;
      for (std::size_t fi : eligible) {
        if (g_.funcs[fi].file == from) same.push_back(fi);
      }
      if (!same.empty()) return same;
    }
    return eligible;
  }

 private:
  const Flat& flatten_impl(std::size_t fi, int depth) {
    if (flat_[fi]) return *flat_[fi];
    static const Flat kEmpty{};
    if (depth > kMaxDepth) return kEmpty;
    if (on_stack_.count(fi) != 0) {
      // Cycle: the caller records the cut; nothing to flatten here.
      return kEmpty;
    }
    on_stack_.insert(fi);
    const FuncDef& d = g_.funcs[fi];
    if (!local_[fi]) local_[fi] = extract_local_events(d, sites_);

    Flat result;
    for (const LocalEvent& ev : *local_[fi]) {
      if (result.effects.size() > kMaxFlatEffects) break;
      if (!ev.is_call) {
        result.effects.push_back(ev.eff);
        continue;
      }

      std::vector<std::size_t> targets;
      if (ev.is_resume) {
        // Synthetic fiber edges: `fiber->resume()` transfers control into
        // the worker lambda; splice the summaries of everything the lambda
        // body calls (same file).
        auto fit = g_.fiber_entries.find(d.file->path);
        if (fit != g_.fiber_entries.end()) {
          std::set<std::size_t> seen;
          for (const std::string& entry : fit->second) {
            for (std::size_t ti : resolve_targets(entry, d.file, true)) {
              if (seen.insert(ti).second) targets.push_back(ti);
            }
          }
        }
      } else {
        targets = resolve_targets(ev.name, d.file, /*prefer_same_file=*/!ev.member);
      }

      if (targets.empty()) {
        // Scoped calls anchor to external namespaces (std::, kernel::, ...)
        // and member calls bind to plain data-structure methods; only an
        // unresolvable *plain* call is a summary escape.
        if (!ev.member && ev.scope_root.empty() && !ev.is_resume) {
          Effect e;
          e.kind = EffectKind::kUnresolvedCall;
          e.detail = ev.name;
          e.file = d.file->path;
          e.line = ev.line;
          result.effects.push_back(std::move(e));
        }
        continue;
      }
      for (std::size_t ti : targets) {
        if (on_stack_.count(ti) != 0) {
          Effect e;
          e.kind = EffectKind::kRecursiveCall;
          e.detail = ev.name;
          e.file = d.file->path;
          e.line = ev.line;
          result.effects.push_back(std::move(e));
          continue;
        }
        const Flat& sub = flatten_impl(ti, depth + 1);
        for (const Effect& e : sub.effects) {
          if (result.effects.size() > kMaxFlatEffects) break;
          result.effects.push_back(e);
        }
      }
    }
    on_stack_.erase(fi);
    flat_[fi] = std::move(result);
    return *flat_[fi];
  }

  const CallGraph& g_;
  SiteIndex sites_;
  std::vector<std::optional<std::vector<LocalEvent>>> local_;
  std::vector<std::optional<Flat>> flat_;
  std::set<std::size_t> on_stack_;
};

}  // namespace

const char* effect_kind_name(EffectKind k) {
  switch (k) {
    case EffectKind::kMutation: return "mutation";
    case EffectKind::kSend: return "send";
    case EffectKind::kBlocking: return "blocking";
    case EffectKind::kFomYield: return "fom-yield";
    case EffectKind::kYield: return "yield";
    case EffectKind::kUnboundedLoop: return "unbounded-loop";
    case EffectKind::kRecursiveCall: return "recursive-call";
    case EffectKind::kUnresolvedCall: return "unresolved-call";
  }
  return "?";
}

const HandlerEffects* Report::effects_for(const std::string& server, const std::string& msg,
                                          const std::string& kind) const {
  for (const HandlerEffects& h : handler_effects) {
    if (h.server == server && h.msg == msg && h.kind == kind) return &h;
  }
  return nullptr;
}

void run_effects_pass(const std::vector<LexedFile>& files, const CallGraph& graph,
                      Report& report) {
  // Suppression lookup: blocking points under an analyze-suppress comment
  // stay in the effect inventory (they are real code paths) but are stamped
  // and excluded from findings.
  std::map<std::string, const LexedFile*> lexed;
  for (const LexedFile& f : files) lexed[f.path] = &f;
  SiteIndex sites;
  for (const SendSite& s : report.sites) sites[s.file][s.line] = &s;

  std::map<std::string, const SpecRow*> spec;
  for (const SpecRow& r : report.spec) spec[r.name] = &r;

  Summarizer summarizer(graph, std::move(sites));

  // Cross-handler finding dedup: the same deep site (e.g. the fiber suspend
  // in CachedStore::read_block) is reachable from many handler rows but is
  // one blocking point, one finding.
  std::set<std::pair<std::string, int>> seen_blocking, seen_unresolved, seen_mutate;

  for (const HandlerReg& h : report.handlers) {
    HandlerEffects he;
    he.server = h.server;
    he.msg = h.msg;
    he.kind = h.kind;
    he.fn = h.fn;
    he.file = h.file;
    he.line = h.line;
    auto sit = spec.find(h.msg);
    // ServerCommon::dispatch opens the window only for replyable requests;
    // without a spec row, a request registration is assumed replyable.
    he.opens_window = h.kind == "request" && (sit == spec.end() || sit->second->kind == "REQ");

    std::vector<std::size_t> defs;
    for (std::size_t fi : summarizer.resolve_targets(h.fn, nullptr, false)) {
      if (graph.funcs[fi].file->path == h.file) defs.push_back(fi);
    }
    if (defs.empty()) {
      // Registration without a local body (fixture stubs): keep the row so
      // coverage accounting still sees it, with an empty summary.
      report.handler_effects.push_back(std::move(he));
      continue;
    }
    he.has_body = true;
    he.file = graph.funcs[defs.front()].file->path;
    he.line = graph.funcs[defs.front()].line;
    // Union resolution replays shared callees once per candidate target, so
    // the raw flattening repeats identical site sequences; the summary keeps
    // each distinct effect site once, in first-occurrence flow order (that
    // first position is what the straight-line walk below reasons about).
    {
      const Flat& flat = summarizer.flatten(defs.front());
      std::set<std::string> seen_effects;
      for (const Effect& e : flat.effects) {
        const std::string key = std::string(effect_kind_name(e.kind)) + '|' + e.detail + '|' +
                                e.msg + '|' + e.file + '|' + std::to_string(e.line);
        if (seen_effects.insert(key).second) he.effects.push_back(e);
      }
    }
    for (Effect& e : he.effects) {
      if (e.kind != EffectKind::kBlocking) continue;
      auto lit = lexed.find(e.file);
      e.suppressed = lit != lexed.end() && lit->second->suppressed(kDetBlockingInHandler, e.line);
    }

    // Derived aggregates + handler-granularity window predictions.
    // Predictions are *existential* over the effect sequence: any branch may
    // skip a prefix (a cache hit skips the read-path suspend), so "may" facts
    // must not depend on ordering. Windows only exist for opening handlers.
    bool closed_enhanced = false;
    std::string close_msg;
    for (const Effect& e : he.effects) {
      switch (e.kind) {
        case EffectKind::kMutation:
          ++he.mutations_total;
          if (closed_enhanced) {
            ++he.mutations_after_close;
            if (he.mutations_after_close == 1 && he.opens_window &&
                seen_mutate.insert({e.file, e.line}).second) {
              report.findings.push_back(Finding{
                  kDetMutateAfterSend, e.file, e.line,
                  "ckpt mutation (" + e.detail + ") ordered after " + he.server + "/" + he.msg +
                      "'s window closes (" + close_msg +
                      " under the enhanced policy): rollback no longer covers this store"});
            }
          }
          break;
        case EffectKind::kSend:
          if (he.opens_window) {
            for (int pi = 0; pi < kNumPolicies; ++pi) {
              const auto pol = static_cast<Policy>(pi);
              if (policy_taints_window(pol, e.cls)) {
                he.may_taint[pi] = true;
              } else if (policy_closes_window(pol, e.cls)) {
                he.may_close_by_seep[pi] = true;
              }
            }
            if (!closed_enhanced && policy_closes_window(Policy::kEnhanced, e.cls)) {
              closed_enhanced = true;
              close_msg = e.msg;
            }
          }
          break;
        case EffectKind::kBlocking:
          if (he.opens_window) he.may_close_by_yield = true;
          if (!e.suppressed && seen_blocking.insert({e.file, e.line}).second) {
            report.findings.push_back(
                Finding{kDetBlockingInHandler, e.file, e.line,
                        "blocking operation (" + e.detail + ") reachable from handler " +
                            he.server + "/" + he.msg +
                            ": the server cannot dispatch until it completes (FOM worklist)"});
          }
          break;
        case EffectKind::kFomYield:
          // A resumable park point: no finding (the executor keeps the
          // server dispatching) and no forced close — the window survives
          // the disk wait as per-request park/resume accounting.
          if (he.opens_window) he.may_park = true;
          break;
        case EffectKind::kYield:
          if (he.opens_window) he.may_close_by_yield = true;
          break;
        case EffectKind::kUnboundedLoop:
          he.has_unbounded_loop = true;
          break;
        case EffectKind::kRecursiveCall:
          he.recursive = true;
          break;
        case EffectKind::kUnresolvedCall:
          ++he.unresolved_callees;
          if (seen_unresolved.insert({e.file, e.line}).second) {
            report.findings.push_back(
                Finding{kDetUnsummarizedCallee, e.file, e.line,
                        "call to '" + e.detail +
                            "' resolves to no scanned definition and no intrinsic model: "
                            "the effect summary for " +
                            he.server + "/" + he.msg + " is incomplete"});
          }
          break;
      }
    }
    report.handler_effects.push_back(std::move(he));
  }
}

// --- determinism lint --------------------------------------------------------

namespace {

bool is_assoc_container(const std::string& s) {
  return s == "map" || s == "set" || s == "multimap" || s == "multiset" ||
         s == "unordered_map" || s == "unordered_set";
}

bool is_wallclock_ident(const std::string& s) {
  return s == "steady_clock" || s == "system_clock" || s == "high_resolution_clock" ||
         s == "gettimeofday" || s == "clock_gettime" || s == "timespec_get";
}

bool is_rand_ident(const std::string& s) {
  return s == "rand" || s == "srand" || s == "random" || s == "drand48" || s == "lrand48" ||
         s == "random_device" || s == "mt19937" || s == "mt19937_64" ||
         s == "default_random_engine" || s == "minstd_rand";
}

/// Does the first top-level template argument of the group opening at `lt`
/// name a pointer (or integer-laundered pointer) type?
bool first_targ_is_pointerish(const Tokens& t, std::size_t lt, std::size_t* out_end) {
  int depth = 0;
  bool pointerish = false;
  bool in_first = true;
  for (std::size_t i = lt; i < t.size(); ++i) {
    if (t[i].is("<")) ++depth;
    if (t[i].is(">") && --depth == 0) {
      *out_end = i;
      return pointerish;
    }
    if (t[i].is(";")) break;  // runaway: comparison, not a template group
    if (depth == 1 && t[i].is(",")) in_first = false;
    if (depth == 1 && in_first &&
        (t[i].is("*") || t[i].is_ident("uintptr_t") || t[i].is_ident("intptr_t"))) {
      pointerish = true;
    }
  }
  *out_end = lt;
  return false;
}

}  // namespace

void run_determinism_pass(const LexedFile& f, std::vector<Finding>& findings) {
  const Tokens& t = f.tokens;
  auto add = [&](const char* det, int line, std::string msg) {
    if (f.suppressed(det, line)) return;
    findings.push_back(Finding{det, f.path, line, std::move(msg)});
  };

  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    const bool member = i > 0 && (t[i - 1].is(".") || t[i - 1].is("->"));
    const std::string& s = t[i].text;

    if (is_assoc_container(s) && t[i + 1].is("<") && !member) {
      std::size_t end = 0;
      if (first_targ_is_pointerish(t, i + 1, &end)) {
        add(kDetNondetPointerKey, t[i].line,
            "pointer-keyed " + s +
                ": iteration order depends on heap layout — traces and merges fed from it "
                "are nondeterministic (the PR 4 duplicate-filter bug class)");
        i = end;
        continue;
      }
    }
    if (s == "hash" && t[i + 1].is("<")) {
      std::size_t end = 0;
      if (first_targ_is_pointerish(t, i + 1, &end)) {
        add(kDetNondetAddrHash, t[i].line,
            "hashing a pointer value: the digest changes across runs with ASLR/heap layout");
        i = end;
        continue;
      }
    }
    if (is_wallclock_ident(s)) {
      add(kDetNondetWallClock, t[i].line,
          "wall-clock source '" + s +
              "': replay and golden traces require the deterministic VirtualClock");
      continue;
    }
    if (is_rand_ident(s) && !member) {
      add(kDetNondetRand, t[i].line,
          "unseeded/ambient randomness '" + s +
              "': randomized behaviour must flow through support/rng.hpp");
      continue;
    }
  }
}

}  // namespace osiris::analyze
