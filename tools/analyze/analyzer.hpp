// osiris-analyze: orchestration — scan a source tree, run both passes,
// produce the combined report.
#pragma once

#include <string>

#include "model.hpp"

namespace osiris::analyze {

/// Analyze the tree rooted at `root` (the repository root: passes scan
/// `<root>/src/servers`, `<root>/src/fs`, `<root>/src/os`).
/// Throws std::runtime_error if the expected layout is missing.
Report analyze_tree(const std::string& root);

/// Render the report as JSON (the machine-readable artifact the lint gate
/// writes next to the build).
std::string report_to_json(const Report& report);

}  // namespace osiris::analyze
