// osiris-analyze: orchestration — scan a source tree, run both passes,
// produce the combined report.
#pragma once

#include <string>

#include "model.hpp"

namespace osiris::analyze {

/// Analyze the tree rooted at `root` (the repository root: passes scan
/// `<root>/src/servers`, `<root>/src/fs`, `<root>/src/os`).
/// Throws std::runtime_error if the expected layout is missing.
Report analyze_tree(const std::string& root);

/// Render the report as JSON (the machine-readable artifact the lint gate
/// writes next to the build).
std::string report_to_json(const Report& report);

/// Render the Pass 4 handler-effect summaries as the standalone
/// handler_effects.json artifact (schema documented in DESIGN.md §13; the
/// ctest schema-stability gate pins its key set).
std::string handler_effects_to_json(const Report& report, const std::string& root);

}  // namespace osiris::analyze
