// Pass 2 — SEEP analysis: rebuild the artifacts of the paper's call-site
// classification pass from the source tree and verify the hand-authored
// substitution.
//
//   * parse every `*Msg` protocol enum (message name -> value);
//   * parse the hand-authored `build_classification()` table;
//   * extract all outbound seep_call / seep_send / seep_notify /
//     seep_deferred_reply sites per server, resolving each site's message
//     type (inline make_msg, or a local `Message x = make_msg(...)`);
//   * build the static inter-component channel graph;
//   * flag message types that would silently fall to the conservative
//     default in seep::Classification::get (unclassified-msg), send sites
//     whose type has no explicit entry (unclassified-send), and
//     classification entries for messages that no longer exist
//     (stale-class-entry);
//   * emit per-server, per-policy static recovery-window predictions that
//     an integration test cross-validates against runtime WindowStats.
#pragma once

#include <vector>

#include "lexer.hpp"
#include "model.hpp"

namespace osiris::analyze {

/// Parse `enum [class] <Name>Msg : type { NAME = value, ... }` definitions.
std::vector<MsgDef> parse_protocol_enums(const LexedFile& f);

/// Parse `c.set(NAME, CLASS[, replyable])` entries plus the local
/// `const auto SM = SeepClass::k...;` aliases of build_classification().
std::vector<ClassEntry> parse_classification(const LexedFile& f, std::vector<Finding>& findings);

/// Extract outbound SEEP sites from one server implementation file.
std::vector<SendSite> extract_send_sites(const LexedFile& f, const std::string& server);

/// Extract raw kernel IPC sites (`kernel_.send(...)` / `kernel_.notify(...)`)
/// from RCB code (the recovery engine). These are sanctioned raw sends — the
/// RCB has no recovery window — but their message types must still resolve
/// against the classification, and their channels (e.g. engine -> RS park
/// announcements) belong in the channel graph under server "rcb".
std::vector<SendSite> extract_rcb_send_sites(const LexedFile& f);

/// Parse the rows of the declarative OSIRIS_MSG_SPEC X-macro table:
/// `X(NAME, value, owner, CLS, KIND, nargs, TXT|NOTEXT, "doc")`. The lexer
/// exposes the macro body specifically for this pass.
std::vector<SpecRow> parse_spec_rows(const LexedFile& f);

/// Extract `on(MSG, ...)` / `on_notify(MSG, ...)` / `on_reply(MSG, ...)`
/// handler registrations from one server implementation file.
std::vector<HandlerReg> extract_handler_regs(const LexedFile& f, const std::string& server);

/// Cross-reference sites, enums and the classification: resolves each
/// site's SEEP class, appends completeness findings, and fills the channel
/// graph and the per-policy window predictions.
void resolve_and_predict(Report& report);

/// Pass 3 — spec cross-check: every handler registration must name a spec
/// row of the matching delivery kind registered by the owning server, and
/// every server-owned spec row must have a handler (RS_PING-style "any" and
/// client-delivered rows are exempt). No-op when the tree has no spec table.
void crosscheck_spec_handlers(Report& report);

}  // namespace osiris::analyze
