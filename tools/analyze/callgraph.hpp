// Pass 4 support: a name-resolved call graph over the scanned sources.
//
// The analyzer is a token-level tool, not a C++ frontend, so the graph is
// built from two heuristics that hold across the OSIRIS tree:
//
//   * A *definition* is `name (params) [quals] {` — optionally preceded by
//     `Class ::` for out-of-line members and optionally carrying a
//     constructor initializer list between the parameter list and the body.
//   * A *call* is `name (` in a function body whose previous token is not an
//     identifier (declarations like `FiScope s(...)`), not `.`/`->`-free
//     member access it cannot place, and not a control-flow keyword.
//
// Resolution is purely by name. Overloads and same-named methods on
// different classes resolve to the *union* of all definitions — a
// conservative over-approximation (documented in DESIGN.md §13) that also
// covers virtual dispatch (e.g. `BlockStore::read_block` resolving to both
// CachedStore and DirectStore bodies).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace osiris::analyze {

/// One function definition found in a scanned file.
struct FuncDef {
  std::string name;          // unqualified function name
  std::string qual;          // `Pm` for `Pm::do_fork`, empty for free/in-class
  const LexedFile* file = nullptr;
  int line = 0;
  std::size_t body_begin = 0;  // token index of the body '{'
  std::size_t body_end = 0;    // token index of the matching '}'
};

struct CallGraph {
  std::vector<FuncDef> funcs;
  /// name -> indices into funcs (union resolution).
  std::map<std::string, std::vector<std::size_t>> by_name;
  /// Per file path: names called from inside cothread::Fiber constructor
  /// lambdas. `fiber->resume()` in the same file gets synthetic edges to
  /// these (the worker-thread indirection in VFS).
  std::map<std::string, std::vector<std::string>> fiber_entries;

  [[nodiscard]] const std::vector<std::size_t>* resolve(const std::string& name) const {
    auto it = by_name.find(name);
    return it == by_name.end() ? nullptr : &it->second;
  }
};

/// Build the call graph over all lexed files.
CallGraph build_call_graph(const std::vector<LexedFile>& files);

/// Balanced-token matcher shared with the seep pass (exposed here so the
/// effects pass reuses one definition).
std::size_t cg_match_forward(const std::vector<Token>& t, std::size_t open, const char* op,
                             const char* cl);

}  // namespace osiris::analyze
