// Pass 1 — discipline lint: verify the store-instrumentation substitution.
//
// The paper instruments every store to recoverable state with an LLVM pass;
// this reproduction substitutes ckpt:: wrapper types plus a set of coding
// conventions. This pass turns the conventions into checked rules:
//
//   state-raw-field   — a field of a `*State` struct is not a ckpt:: wrapper
//                       (its stores would never reach the undo log);
//   state-memfn       — memcpy/memset/memmove writing into the recoverable
//                       data section (bypasses per-store logging);
//   state-const-cast  — const_cast on state (read-only accessors laundered
//                       into unlogged mutable access);
//   mutate-escape     — a mutate() reference escaping the statement scope
//                       (returned, address-taken, or bound to a static):
//                       later writes through it would be unlogged because
//                       the old bytes were only recorded once, at a
//                       checkpoint that may since have been reset;
//   raw-kernel-send   — outbound IPC in a server implementation bypassing
//                       the seep_* wrappers (the recovery window would not
//                       observe the dependency).
#pragma once

#include <vector>

#include "lexer.hpp"
#include "model.hpp"

namespace osiris::analyze {

struct DisciplineOptions {
  /// Apply the raw-kernel-send detector (off for infrastructure files that
  /// legitimately implement the seep_* wrappers themselves).
  bool check_raw_kernel_sends = true;
};

struct DisciplineStats {
  int state_structs = 0;
  int state_fields = 0;
};

DisciplineStats run_discipline_pass(const LexedFile& f, const DisciplineOptions& opt,
                                    std::vector<Finding>& findings);

}  // namespace osiris::analyze
