# Schema-stability check for handler_effects.json.
#
# Runs the analyzer with --effects and asserts the artifact still carries the
# v1 key set that downstream tooling (the FOM-refactor worklist, CI trend
# scripts) relies on. Growing the schema is fine; renaming or dropping a key,
# or bumping schema_version without updating this check, fails the gate.
#
# Usage: cmake -DANALYZER=<bin> -DROOT=<repo> -DOUT=<file> -P check_effects_schema.cmake

foreach(var ANALYZER ROOT OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_effects_schema: -D${var}=... is required")
  endif()
endforeach()

execute_process(
  COMMAND ${ANALYZER} --root ${ROOT} --effects ${OUT} --quiet
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "check_effects_schema: analyzer exited with ${rc}")
endif()

file(READ ${OUT} doc)

# Version pin: bumping it must be a deliberate act that also updates this file.
string(FIND "${doc}" "\"schema_version\": 1" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "check_effects_schema: schema_version != 1")
endif()

# Top-level and per-handler keys of the v1 schema.
set(required_keys
  "\"root\""
  "\"policies\""
  "\"handlers\""
  "\"blocking_points\""
  "\"server\""
  "\"msg\""
  "\"kind\""
  "\"fn\""
  "\"file\""
  "\"line\""
  "\"has_body\""
  "\"opens_window\""
  "\"recursive\""
  "\"has_unbounded_loop\""
  "\"unresolved_callees\""
  "\"mutations_total\""
  "\"mutations_after_close\""
  "\"may_close_by_yield\""
  "\"predictions\""
  "\"pessimistic\""
  "\"enhanced\""
  "\"extended\""
  "\"may_close_by_seep\""
  "\"may_taint\""
  "\"may_park\""
  "\"suppressed\""
  "\"effects\""
  "\"detail\""
)
foreach(key IN LISTS required_keys)
  string(FIND "${doc}" "${key}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "check_effects_schema: required key ${key} missing from ${OUT}")
  endif()
endforeach()

message(STATUS "check_effects_schema: handler_effects.json schema v1 intact")
