// osiris-analyze: a lightweight C++ tokenizer.
//
// The analyzer does not need a real C++ front end: the discipline and SEEP
// passes only match local token shapes (struct bodies, call expressions,
// enum definitions). The lexer therefore produces a flat token stream with
// comments, string literals and preprocessor directives stripped — but it
// *does* harvest `analyze-suppress(detector): reason` comments, which are
// the mechanism for classifying intentional deviations in the source tree.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace osiris::analyze {

enum class Tok : unsigned char { kIdent, kNumber, kString, kPunct };

struct Token {
  Tok kind;
  std::string text;
  int line;

  [[nodiscard]] bool is(std::string_view s) const { return text == s; }
  [[nodiscard]] bool is_ident(std::string_view s) const { return kind == Tok::kIdent && text == s; }
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  /// line -> detector ids suppressed on that line (a suppression comment
  /// covers its own line and the line directly below it).
  std::map<int, std::vector<std::string>> suppressions;

  [[nodiscard]] bool suppressed(const std::string& detector, int line) const;
};

/// Tokenize an in-memory buffer (path is carried through for findings).
LexedFile lex_source(std::string path, std::string_view src);

/// Read and tokenize a file; throws std::runtime_error if unreadable.
/// `display_path` (when non-empty) replaces `path` in findings — the
/// analyzer passes repo-relative paths so reports are machine-stable.
LexedFile lex_file(const std::string& path, std::string display_path = {});

}  // namespace osiris::analyze
