// Fixture server: every discipline detector has a seeded violation here,
// plus one suppressed occurrence proving suppression comments work. This
// file is test data for osiris-analyze — it is never compiled.
#include "protocol.hpp"

namespace fixture {

struct PmState {
  ckpt::Cell<int> good_cell;          // fine: wrapper type
  ckpt::Array<int, 8> good_array;     // fine: wrapper type
  int bad_counter = 0;                // state-raw-field
  osiris::ckpt::Cell<int> also_good;  // fine: qualified wrapper
  ckpt::PagedTable<int> good_paged;   // fine: PageStore-backed table (§17)
};

class Pm {
 public:
  PmState& st() { return state_; }

  void reset_everything() {
    std::memset(&st(), 0, sizeof(PmState));  // state-memfn
  }

  void launder() const {
    const_cast<PmState&>(state_).bad_counter = 7;  // state-const-cast
  }

  int& leak_reference(int i) {
    return st().good_array.mutate(i);  // mutate-escape: returned
  }

  void stash_pointer(int i) {
    auto* p = &st().good_array.mutate(i);  // mutate-escape: address taken
    *p = 42;
  }

  void blessed_use(int i) {
    auto& v = st().good_array.mutate(i);  // fine: statement-local reference
    v = 1;
  }

  void bypass_wrappers(kernel::Endpoint dst) {
    Message m = make_msg(PM_FROB, 1);
    kernel_.send(ep_, dst, m);  // raw-kernel-send

    // analyze-suppress(raw-kernel-send): deliberate fixture suppression —
    // this occurrence must NOT be reported.
    kernel_.notify(ep_, dst, PM_PING);
  }

  void send_unknown(kernel::Endpoint dst) {
    seep_call(dst, make_msg(PM_MYSTERY, 0));  // unclassified-send
  }

  void register_handlers() {
    on(FX_PING, &Pm::do_ping);    // fine: owner and kind match the spec row
    on(FX_NOTE, &Pm::do_note);    // spec-owner-drift + handler-kind-drift
    on(PM_ROGUE, &Pm::do_rogue);  // handler-without-spec
  }

 private:
  PmState state_;
  kernel::Endpoint ep_;
};

}  // namespace fixture
