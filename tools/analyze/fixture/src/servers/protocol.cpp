// Fixture classification: PM_GONE names no live protocol message
// (stale-class-entry); PM_LOST from the enum is deliberately absent.
#include "protocol.hpp"

namespace fixture {

seep::Classification build_classification() {
  seep::Classification c;
  const auto SM = seep::SeepClass::kStateModifying;
  const auto NSM = seep::SeepClass::kNonStateModifying;

  c.set(PM_PING, NSM);
  c.set(PM_FROB, SM);
  c.set(PM_GONE, SM, /*replyable=*/false);

  return c;
}

}  // namespace fixture
