// Fixture spec table: test data for osiris-analyze's spec cross-check —
// this file is never compiled.
//
//   FX_PING  — healthy row: pm registers it via on().
//   FX_DRIFT — no handler registration anywhere (spec-missing-handler).
//   FX_NOTE  — owned by vm and declared NOTE, but pm registers it via on()
//              (spec-owner-drift + handler-kind-drift). vm itself has no
//              scanned registrations, so FX_NOTE must NOT also produce a
//              spec-missing-handler finding.
#pragma once

#define OSIRIS_MSG_SPEC(X)                                                    \
  X(FX_PING,  0x010, pm, NSM, REQ,  0, NOTEXT, "healthy row")                 \
  X(FX_DRIFT, 0x011, pm, SM,  REQ,  1, NOTEXT, "row without a handler")       \
  X(FX_NOTE,  0x012, vm, SM,  NOTE, 0, NOTEXT, "registered by pm via on()")
