// Fixture spec table: test data for osiris-analyze's spec cross-check —
// this file is never compiled.
//
//   FX_PING  — healthy row: pm registers it via on().
//   FX_DRIFT — no handler registration anywhere (spec-missing-handler).
//   FX_NOTE  — owned by vm and declared NOTE, but pm registers it via on()
//              (spec-owner-drift + handler-kind-drift). vm itself has no
//              scanned registrations, so FX_NOTE must NOT also produce a
//              spec-missing-handler finding.
//   FX_BLOCK / FX_WIDEN / FX_TRACE — ds rows whose handlers (ds.cpp) seed
//              the Pass 4 effects and determinism detectors.
//   FX_POKE  — client-delivered SM send: ds.cpp's outbound site, closing
//              FX_WIDEN's window under the enhanced policy.
#pragma once

#define OSIRIS_MSG_SPEC(X)                                                    \
  X(FX_PING,  0x010, pm, NSM, REQ,  0, NOTEXT, "healthy row")                 \
  X(FX_DRIFT, 0x011, pm, SM,  REQ,  1, NOTEXT, "row without a handler")       \
  X(FX_NOTE,  0x012, vm, SM,  NOTE, 0, NOTEXT, "registered by pm via on()")   \
  X(FX_BLOCK, 0x013, ds, NSM, REQ,  0, NOTEXT, "blocking handler seed")       \
  X(FX_WIDEN, 0x014, ds, SM,  REQ,  0, NOTEXT, "mutate-after-send seed")      \
  X(FX_TRACE, 0x015, ds, NSM, REQ,  0, NOTEXT, "determinism-lint seed")       \
  X(FX_POKE,  0x016, client, SM, SEND, 0, NOTEXT, "outbound poke from ds")
