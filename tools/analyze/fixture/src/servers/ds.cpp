// Fixture server for Pass 4: each effects detector and each determinism
// detector has exactly one seeded violation here, plus shapes exercising the
// call-graph builder (direct, transitive, recursive, unresolvable callees,
// and an unreached function whose escapes must NOT be reported). This file
// is test data for osiris-analyze — it is never compiled.
#include "protocol.hpp"

namespace fixture {

struct Obj {
  int key = 0;
};

struct DsState {
  ckpt::Array<int, 8> counters;  // fine: wrapper type
};

class Ds {
 public:
  DsState& st() { return state_; }

  void register_handlers() {
    on(FX_BLOCK, &Ds::do_block);  // blocks transitively via wait_for_disk()
    on(FX_WIDEN, &Ds::do_widen);  // mutates after its window-closing send
    on(FX_TRACE, &Ds::do_trace);  // reaches the nondeterministic trace emitter
  }

  // Direct handler -> transitive blocking: do_block -> wait_for_disk ->
  // read_now (one blocking-in-handler finding, at the read_now line).
  Message do_block(const Message& m) {
    wait_for_disk();
    return make_reply(m.type, 0);
  }

  void wait_for_disk() {
    dev_.read_now(0, scratch_);  // blocking-in-handler
  }

  // The window for FX_WIDEN closes at the SM send under the enhanced
  // policy; the counter store after it is the seeded widening violation.
  Message do_widen(const Message& m) {
    bump_counter(2);  // recursive callee: summary carries a recursion cut
    seep_send(kernel::Endpoint{client_ep_}, make_msg(FX_POKE, 0));
    st().counters.set(0, 1);  // mutate-after-send
    return make_reply(m.type, 0);
  }

  void bump_counter(int n) {
    if (n > 0) bump_counter(n - 1);
    st().counters.set(1, n);
  }

  Message do_trace(const Message& m) {
    spin();
    mystery_helper(7);  // unsummarized-callee: no definition anywhere
    return make_reply(m.type, 0);
  }

  void spin() {
    for (;;) {  // unbounded loop: summary flag, not a finding
      emit_trace();
      break;
    }
  }

  // The PR 4 bug class, one seed per determinism detector.
  void emit_trace() {
    std::map<const Obj*, int> order;  // nondet-pointer-key
    order[nullptr] = 0;
    const std::size_t digest = std::hash<const Obj*>{}(nullptr);   // nondet-addr-hash
    const auto stamp = std::chrono::steady_clock::now();           // nondet-wallclock
    const int jitter = rand();                                     // nondet-rand
    (void)digest;
    (void)stamp;
    (void)jitter;
  }

  // Never called from any handler: its unresolvable callee must NOT be
  // reported (reachability-rooted detection).
  void unreached_helper() {
    other_mystery(3);
  }

 private:
  DsState state_;
  BlockDevice dev_;
  std::span<std::byte, 512> scratch_;
  std::uint64_t client_ep_ = 0;
};

}  // namespace fixture
