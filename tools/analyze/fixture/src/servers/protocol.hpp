// Fixture protocol: a miniature *Msg enum for detector tests.
// PM_LOST deliberately has no classification entry (unclassified-msg).
#pragma once

#include <cstdint>

namespace fixture {

enum class PmMsg : std::uint32_t {
  PM_PING = 0x001,
  PM_FROB = 0x002,
  PM_LOST = 0x003,
};

}  // namespace fixture
