// The paper's SIII-C narrative, reproduced end to end: a shell issues
// fork(); the Process Manager takes a NULL-pointer dereference while
// handling it *before* communicating with other components; the Recovery
// Server restores PM from the undo log and answers the shell with E_CRASH;
// the shell "simply aborts the execution of the command and informs the
// user that something went wrong" — and keeps running.
//
//   $ ./build/examples/shell_survives
#include <cstdio>
#include <cstring>

#include "fi/registry.hpp"
#include "os/instance.hpp"
#include "support/log.hpp"
#include "workload/suite.hpp"

using namespace osiris;

int main() {
  slog::set_threshold(slog::Level::kInfo);
  os::OsConfig cfg;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();

  // A tiny shell: run each command with fork+exec+wait, report failures to
  // the "user" and continue — exactly how well-written programs deal with
  // E_CRASH (paper SIII-C).
  const auto outcome = inst.run([&inst](os::ISys& sys) {
    const char* script[] = {"/bin/true", "/bin/sh_script", "/bin/true",
                            "/bin/sh_script", "/bin/true"};
    int command_no = 0;
    for (const char* cmd : script) {
      ++command_no;
      if (command_no == 3) {
        // Plant the fault the example is about: PM will crash while handling
        // the *next* fork, before it has talked to any other component.
        for (fi::Site* s : fi::Registry::instance().sites()) {
          if (std::strcmp(s->tag, "pm") == 0 && s->hits() > 0) {
            fi::Registry::instance().arm(s, fi::FaultType::kNullDeref, s->hits() + 2);
            break;
          }
        }
        std::printf("sh: (a NULL-pointer bug is about to fire inside PM)\n");
      }
      const std::int64_t pid = sys.fork([cmd](os::ISys& c) {
        c.exec(cmd);
        c.exit(127);
      });
      if (pid < 0) {
        std::printf("sh: %s: cannot execute (%s) — continuing with the next command\n", cmd,
                    kernel::errno_name(pid));
        continue;
      }
      std::int64_t status = -1;
      sys.wait_pid(pid, &status);
      std::printf("sh: %s exited with status %lld\n", cmd, static_cast<long long>(status));
    }
    std::printf("sh: script done; PM was recovered %u time(s) along the way\n",
                inst.engine().recoveries_of(kernel::kPmEp));
  });
  fi::Registry::instance().disarm();

  std::printf("machine outcome: %s (the failure was cleanly handled and the system\n"
              "is once again in a stable and consistent state)\n",
              os::OsInstance::outcome_name(outcome));
  return outcome == os::OsInstance::Outcome::kCompleted ? 0 : 1;
}
