// Quickstart: boot an OSIRIS machine, run a user program, inject one
// fail-stop fault into the Process Manager, and watch the recovery pipeline
// (restart -> rollback -> reconciliation) keep the system alive.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <cstring>

#include "fi/registry.hpp"
#include "os/instance.hpp"
#include "support/log.hpp"
#include "workload/suite.hpp"

using namespace osiris;

int main() {
  slog::set_threshold(slog::Level::kInfo);  // narrate recoveries

  // Warm-up machine: probes register lazily on first execution, so a tiny
  // throwaway run makes PM's fault sites visible before we arm one.
  {
    slog::set_threshold(slog::Level::kWarn);
    os::OsConfig warm_cfg;
    os::OsInstance warm(warm_cfg);
    workload::register_suite_programs(warm.programs());
    warm.boot();
    warm.run([](os::ISys& sys) { sys.getpid(); });
    slog::set_threshold(slog::Level::kInfo);
  }

  os::OsConfig cfg;                     // enhanced policy, optimized
  cfg.policy = seep::Policy::kEnhanced;  // instrumentation — the defaults
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  std::printf("== booted: PM, VM, VFS (multithreaded), DS, RS + SYS task ==\n");

  // Arm one fail-stop fault on PM's busiest probe (its request-loop entry).
  fi::Registry::instance().reset_counts();
  fi::Site* pm_site = nullptr;
  for (fi::Site* s : fi::Registry::instance().sites()) {
    if (std::strcmp(s->tag, "pm") == 0 && (pm_site == nullptr || s->boot_hits() > pm_site->boot_hits())) {
      pm_site = s;
    }
  }
  OSIRIS_ASSERT(pm_site != nullptr);
  fi::Registry::instance().arm(pm_site, fi::FaultType::kNullDeref, 20);

  const auto outcome = inst.run([](os::ISys& sys) {
    std::printf("[init] pid=%lld, uname=", static_cast<long long>(sys.getpid()));
    std::string name;
    sys.uname(&name);
    std::printf("%s\n", name.c_str());

    // Write and read back a file.
    const std::int64_t fd = sys.open("/tmp/quickstart", servers::O_CREAT | servers::O_RDWR);
    sys.write_str(fd, "hello from simulated userland\n");
    sys.close(fd);

    // Fork children in a loop: one of these PM requests will take the
    // injected fault. The error-virtualized E_CRASH reply is handled like
    // any other fork failure.
    int ok = 0, failed = 0;
    for (int i = 0; i < 8; ++i) {
      const std::int64_t pid = sys.fork([i](os::ISys& c) { c.exit(i); });
      if (pid > 0) {
        std::int64_t status = -1;
        sys.wait_pid(pid, &status);
        ++ok;
      } else {
        std::printf("[init] fork #%d failed with %s — continuing\n", i,
                    kernel::errno_name(pid));
        ++failed;
      }
    }
    std::printf("[init] forks: %d ok, %d failed — system still running\n", ok, failed);
  });
  fi::Registry::instance().disarm();

  std::printf("== machine outcome: %s ==\n", os::OsInstance::outcome_name(outcome));
  std::printf("recoveries: PM restarted %u time(s); undo-log rollbacks: %llu\n",
              inst.engine().recoveries_of(kernel::kPmEp),
              static_cast<unsigned long long>(inst.engine().stats().rollbacks));
  return outcome == os::OsInstance::Outcome::kCompleted ? 0 : 1;
}
