// Compare the four recovery policies on the same fault.
//
// One fail-stop fault is injected at the same execution point of the same
// Data Store site under each policy; the example shows how the machine's
// fate differs: enhanced/pessimistic recover (or shut down consistently),
// naive limps or cascades, stateless loses state and wedges.
//
//   $ ./build/examples/recovery_policies
#include <cstdio>
#include <cstring>

#include "fi/registry.hpp"
#include "os/instance.hpp"
#include "support/table_printer.hpp"
#include "workload/suite.hpp"

using namespace osiris;

namespace {

struct Result {
  os::OsInstance::Outcome outcome;
  int ds_ops_ok = 0;
  int ds_ops_failed = 0;
  std::uint32_t recoveries = 0;
};

std::uint64_t g_trigger_hit = 0;
const fi::Site* g_site = nullptr;

/// Profile the demo workload once without faults: find DS's busiest site
/// and a trigger point that lands inside the user's publish loop.
void profile_demo() {
  fi::Registry::instance().disarm();
  fi::Registry::instance().reset_counts();
  os::OsConfig cfg;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  inst.run([](os::ISys& sys) {
    for (int i = 0; i < 20; ++i) sys.ds_publish("demo.key" + std::to_string(i), 1);
  });
  fi::Site* best = nullptr;
  for (fi::Site* s : fi::Registry::instance().sites()) {
    if (std::strcmp(s->tag, "ds") == 0 && (best == nullptr || s->hits() > best->hits())) best = s;
  }
  OSIRIS_ASSERT(best != nullptr && best->hits() > 4);
  g_site = best;
  g_trigger_hit = best->hits() * 3 / 4;  // well inside the user's loop
}

Result run_under(seep::Policy policy) {
  fi::Registry::instance().disarm();
  fi::Registry::instance().reset_counts();
  os::OsConfig cfg;
  cfg.policy = policy;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();

  fi::Registry::instance().arm(g_site, fi::FaultType::kNullDeref, g_trigger_hit);

  Result res;
  Result* out = &res;
  res.outcome = inst.run([out](os::ISys& sys) {
    for (int i = 0; i < 20; ++i) {
      const std::string key = "demo.key" + std::to_string(i);
      if (sys.ds_publish(key, static_cast<std::uint64_t>(i)) != kernel::OK) {
        ++out->ds_ops_failed;
        continue;
      }
      std::uint64_t v = 0;
      if (sys.ds_retrieve(key, &v) == kernel::OK && v == static_cast<std::uint64_t>(i)) {
        ++out->ds_ops_ok;
      } else {
        ++out->ds_ops_failed;
      }
    }
  });
  res.recoveries = inst.engine().recoveries_of(kernel::kDsEp);
  fi::Registry::instance().disarm();
  return res;
}

}  // namespace

int main() {
  profile_demo();
  std::printf("One fail-stop fault in the Data Store, four recovery policies:\n\n");
  TablePrinter table({"Policy", "Machine fate", "DS ops ok", "DS ops failed", "DS recoveries"});
  for (auto policy : {seep::Policy::kStateless, seep::Policy::kNaive,
                      seep::Policy::kPessimistic, seep::Policy::kEnhanced}) {
    const Result r = run_under(policy);
    table.add_row({seep::policy_name(policy), os::OsInstance::outcome_name(r.outcome),
                   std::to_string(r.ds_ops_ok), std::to_string(r.ds_ops_failed),
                   std::to_string(r.recoveries)});
  }
  table.print();
  std::printf(
      "\nreading the table: the enhanced policy keeps DS's recovery window\n"
      "open across its early subscriber notification, so the crash is rolled\n"
      "back and error-virtualized (one failed op, everything else clean);\n"
      "pessimistic may have to shut down instead; stateless loses the store\n"
      "and never answers the in-flight request.\n");
  return 0;
}
