// A miniature EDFI-style fault-injection campaign, end to end:
// profile the test suite, draw a small mixed plan, run every injection
// under the enhanced policy, and print the outcome of each run.
//
//   $ ./build/examples/fault_injection_demo
#include <cstdio>

#include "support/table_printer.hpp"
#include "workload/campaign.hpp"

using namespace osiris;
using namespace osiris::workload;

int main() {
  std::printf("profiling the 89-program suite to find triggered fault candidates...\n");
  const auto sites = profile_sites();
  std::printf("%zu candidate sites executed after boot\n\n", sites.size());

  // A small mixed plan: one EDFI injection per 12th site.
  std::vector<Injection> plan;
  {
    const auto full = plan_edfi(/*seed=*/7, /*injections_per_site=*/1);
    for (std::size_t i = 0; i < full.size(); i += 12) plan.push_back(full[i]);
  }
  std::printf("running %zu injections under the enhanced policy:\n\n", plan.size());

  TablePrinter table({"#", "Site", "Fault", "Trigger hit", "Run outcome"});
  CampaignTotals totals;
  int idx = 0;
  for (const Injection& inj : plan) {
    const RunClass rc = run_one_injection(seep::Policy::kEnhanced, inj);
    switch (rc) {
      case RunClass::kPass: ++totals.pass; break;
      case RunClass::kFail: ++totals.fail; break;
      case RunClass::kShutdown: ++totals.shutdown; break;
      case RunClass::kCrash: ++totals.crash; break;
    }
    table.add_row({std::to_string(++idx),
                   std::string(inj.site->tag) + ":" + std::to_string(inj.site->line),
                   fi::fault_name(inj.type), std::to_string(inj.trigger_hit),
                   run_class_name(rc)});
  }
  table.print();
  std::printf("\ntotals: %d pass, %d fail, %d shutdown, %d crash\n", totals.pass, totals.fail,
              totals.shutdown, totals.crash);
  std::printf("(run bench/table2_survivability_failstop and table3_survivability_edfi\n"
              "for the full campaigns behind the paper's Tables II and III)\n");
  return 0;
}
