// Demonstrates the multithreaded VFS (paper SV and SIV-E):
//
//  - worker threads block on simulated disk I/O while other requests keep
//    flowing (several processes hammer the filesystem concurrently);
//  - a cache-miss read suspends the worker, which forcibly *closes* the
//    recovery window (a crash after the yield cannot be error-virtualized);
//  - a fail-stop fault inside a worker early in a request (window still
//    open) is recovered: rollback + E_CRASH + cooperative-thread fixup.
//
//   $ ./build/examples/multithreaded_vfs
#include <cstdio>
#include <cstring>

#include "fi/registry.hpp"
#include "os/instance.hpp"
#include "support/log.hpp"
#include "workload/suite.hpp"

using namespace osiris;

int main() {
  slog::set_threshold(slog::Level::kInfo);
  os::OsConfig cfg;
  cfg.cache_blocks = 16;  // small cache: lots of disk blocking
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();

  const auto outcome = inst.run([](os::ISys& sys) {
    // Four children each write and re-read their own file; with a 16-block
    // cache the reads miss constantly, so VFS worker threads block on the
    // device and requests interleave.
    std::int64_t pids[4];
    for (int i = 0; i < 4; ++i) {
      pids[i] = sys.fork([i](os::ISys& c) {
        const std::string path = "/tmp/worker" + std::to_string(i);
        const std::int64_t fd = c.open(path, servers::O_CREAT | servers::O_RDWR);
        if (fd < 0) c.exit(1);
        std::vector<std::byte> chunk(1024, std::byte{static_cast<unsigned char>('A' + i)});
        for (int b = 0; b < 40; ++b) {
          if (c.write(fd, chunk) != 1024) c.exit(2);
        }
        c.lseek(fd, 0, 0);
        for (int b = 0; b < 40; ++b) {
          if (c.read(fd, chunk) != 1024) c.exit(3);
          if (chunk[0] != std::byte{static_cast<unsigned char>('A' + i)}) c.exit(4);
        }
        c.close(fd);
        c.exit(0);
      });
    }
    int clean = 0;
    for (int i = 0; i < 4; ++i) {
      std::int64_t s = -1;
      if (sys.wait_pid(0, &s) > 0 && s == 0) ++clean;
    }
    std::printf("[init] %d/4 concurrent writers finished cleanly\n", clean);
  });

  std::printf("machine outcome: %s\n", os::OsInstance::outcome_name(outcome));
  const auto& cache = inst.vfs().cache_stats();
  std::printf("block cache: %llu hits, %llu misses (each miss = one worker-thread\n"
              "yield = one forcibly closed recovery window), %llu evictions\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.evictions));
  const auto& ws = inst.vfs().window().stats();
  std::printf("VFS recovery windows: %llu opened, %llu closed by SEEP, %llu closed by yield\n",
              static_cast<unsigned long long>(ws.opened),
              static_cast<unsigned long long>(ws.closed_by_seep),
              static_cast<unsigned long long>(ws.closed_by_yield));
  std::printf("disk: %llu reads, %llu writes\n",
              static_cast<unsigned long long>(inst.disk().stats().reads),
              static_cast<unsigned long long>(inst.disk().stats().writes));
  return outcome == os::OsInstance::Outcome::kCompleted ? 0 : 1;
}
