// Regenerates Figure 3: "Unixbench scores as a function of service
// disruption interval".
//
// Fail-stop faults are injected into PM at a fixed interval, but only while
// PM's recovery window is open (as in the paper, so that every fault is
// consistently recoverable and the benchmark always completes). The
// interval is measured in PM request-loop executions; each sweep step
// doubles the fault influx (halves the interval).
//
// Expected shape (paper): PM-dependent workloads (shell1, shell8, execl,
// spawn, syscall) degrade as the interval shrinks; PM-independent ones
// (dhry2reg, whetstone-double, fsdisk, fsbuffer) stay flat; every run
// completes without functional service degradation.
//
// Environment: OSIRIS_RUNS (default 3), OSIRIS_ITER_SCALE (default 1.0).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "fi/registry.hpp"
#include "os/instance.hpp"
#include "support/stats.hpp"
#include "support/table_printer.hpp"
#include "workload/suite.hpp"
#include "workload/unixbench.hpp"

using namespace osiris;
using namespace osiris::workload;

namespace {

/// PM's busiest fault site (its request-loop entry probe): the site whose
/// hit counter advances once per PM message.
fi::Site* pm_entry_site() {
  // Profile with a tiny run so every PM site has registered itself.
  fi::Registry::instance().disarm();
  fi::Registry::instance().reset_counts();
  {
    os::OsConfig cfg;
    os::OsInstance inst(cfg);
    register_ub_programs(inst.programs());
    inst.boot();
    inst.run([](os::ISys& sys) {
      for (int i = 0; i < 50; ++i) sys.getpid();
    });
  }
  fi::Site* best = nullptr;
  for (fi::Site* s : fi::Registry::instance().sites()) {
    if (std::strcmp(s->tag, "pm") == 0 && (best == nullptr || s->hits() > best->hits())) best = s;
  }
  OSIRIS_ASSERT(best != nullptr);
  return best;
}

double run_with_influx(const UbWorkload& w, std::uint64_t iters, fi::Site* site,
                       std::uint64_t interval) {
  fi::Registry::instance().disarm();
  fi::Registry::instance().reset_counts();
  os::OsConfig cfg;
  cfg.policy = seep::Policy::kEnhanced;
  cfg.max_recoveries = 1u << 30;  // Figure 3 sustains recovery indefinitely
  os::OsInstance inst(cfg);
  register_ub_programs(inst.programs());
  inst.boot();
  if (interval > 0) fi::Registry::instance().arm_periodic_window_crash(site, interval);
  ub_reset_completed();
  const auto body = w.body;
  const auto t0 = std::chrono::steady_clock::now();
  const auto outcome = inst.run([&body, iters](os::ISys& sys) { body(sys, iters); });
  const auto t1 = std::chrono::steady_clock::now();
  fi::Registry::instance().disarm();
  OSIRIS_ASSERT(outcome == os::OsInstance::Outcome::kCompleted);
  // Score completed work units: an iteration whose fork never succeeded
  // under the fault influx contributes nothing (no silent work-shrinkage).
  return ub_score(ub_last_completed(), std::chrono::duration<double>(t1 - t0).count());
}

}  // namespace

int main() {
  const int runs = std::getenv("OSIRIS_RUNS") ? std::atoi(std::getenv("OSIRIS_RUNS")) : 3;
  const double scale =
      std::getenv("OSIRIS_ITER_SCALE") ? std::atof(std::getenv("OSIRIS_ITER_SCALE")) : 1.0;

  fi::Site* site = pm_entry_site();
  std::printf("Figure 3 — unixbench score vs service disruption interval\n");
  std::printf("(fail-stop faults injected into PM's recovery window every N PM requests;\n"
              " scores normalized to the fault-free run = 100)\n\n");

  const std::vector<std::uint64_t> intervals = {0, 10000, 1000, 100, 30, 10, 3, 1};
  std::vector<std::string> headers = {"Benchmark"};
  for (std::uint64_t i : intervals) headers.push_back(i == 0 ? "no faults" : std::to_string(i));
  TablePrinter table(headers);

  for (const UbWorkload& w : ub_workloads()) {
    const auto iters = static_cast<std::uint64_t>(static_cast<double>(w.default_iters) * scale / 2);
    (void)run_with_influx(w, std::max<std::uint64_t>(iters, 1), site, 0);  // warm-up
    std::vector<std::string> row = {w.name};
    double base_score = 0;
    for (std::uint64_t interval : intervals) {
      std::vector<double> scores;
      for (int r = 0; r < runs; ++r) {
        scores.push_back(run_with_influx(w, std::max<std::uint64_t>(iters, 1), site, interval));
      }
      const double med = stats::median(scores);
      if (interval == 0) {
        base_score = med;
        row.push_back("100.0");
      } else {
        row.push_back(TablePrinter::fmt(base_score > 0 ? med / base_score * 100.0 : 0.0, 1));
      }
    }
    table.add_row(row);
    std::fflush(stdout);
  }
  table.print();
  std::printf(
      "\npaper shape: PM-dependent rows (shell1, shell8, execl, spawn) fall\n"
      "sharply at small intervals; PM-independent rows (dhry2reg,\n"
      "whetstone-double, fsdisk, fsbuffer) remain flat; all runs complete.\n");
  return 0;
}
