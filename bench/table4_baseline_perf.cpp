// Regenerates Table IV: "Baseline performance compared to Linux (median
// unixbench scores, higher is better, std.dev. in parentheses)".
//
// The "Linux" column is the monolithic direct-call kernel (os::MonoOs): the
// identical workload code and the identical MiniFS run without message
// passing, isolation or instrumentation. The "OSIRIS" column is the
// uninstrumented multiserver baseline (no checkpointing, no recovery).
// Scores are iterations/second; absolute values are host-dependent, but the
// slowdown column reproduces the paper's shape: the monolithic system wins
// everywhere except pure-compute rows, with the largest factors on
// context-switch-heavy workloads (spawn, shell8, pipe).
//
// Environment: OSIRIS_RUNS (default 11), OSIRIS_ITER_SCALE (default 1.0).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "support/stats.hpp"
#include "support/table_printer.hpp"
#include "workload/unixbench.hpp"

using namespace osiris;
using namespace osiris::workload;

int main() {
  const int runs = std::getenv("OSIRIS_RUNS") ? std::atoi(std::getenv("OSIRIS_RUNS")) : 11;
  const double scale =
      std::getenv("OSIRIS_ITER_SCALE") ? std::atof(std::getenv("OSIRIS_ITER_SCALE")) : 1.0;

  std::printf("Table IV — monolithic (\"Linux\") vs OSIRIS baseline, median of %d runs\n\n",
              runs);

  os::OsConfig baseline;
  baseline.recovery_enabled = false;
  baseline.heartbeat_interval = 0;
  baseline.ckpt_mode = ckpt::Mode::kOff;

  TablePrinter table({"Benchmark", "Mono score", "(sd)", "OSIRIS score", "(sd)", "Slowdown (x)"});
  std::vector<double> slowdowns;
  for (const UbWorkload& w : ub_workloads()) {
    const auto iters = static_cast<std::uint64_t>(static_cast<double>(w.default_iters) * scale);
    (void)run_ub_mono(w, iters);  // warm-up
    (void)run_ub_microkernel(baseline, w, iters);
    std::vector<double> mono_scores, micro_scores;
    for (int r = 0; r < runs; ++r) {
      mono_scores.push_back(ub_score(iters, run_ub_mono(w, iters)));
      micro_scores.push_back(ub_score(iters, run_ub_microkernel(baseline, w, iters)));
    }
    const double mono_med = stats::median(mono_scores);
    const double micro_med = stats::median(micro_scores);
    const double slowdown = micro_med > 0 ? mono_med / micro_med : 0.0;
    slowdowns.push_back(slowdown);
    table.add_row({w.name, TablePrinter::fmt(mono_med, 1),
                   "(" + TablePrinter::fmt(stats::stddev(mono_scores), 1) + ")",
                   TablePrinter::fmt(micro_med, 1),
                   "(" + TablePrinter::fmt(stats::stddev(micro_scores), 1) + ")",
                   TablePrinter::fmt(slowdown, 2)});
    std::fflush(stdout);
  }
  table.add_separator();
  table.add_row({"geomean", "", "", "", "", TablePrinter::fmt(stats::geomean(slowdowns), 2)});
  table.print();
  std::printf(
      "\npaper: geomean slowdown 4.20x vs Linux; worst rows are the\n"
      "context-switch-heavy ones (spawn 33.0x, shell8 35.0x, pipe 17.5x),\n"
      "compute rows are closest to parity. Our compute rows are ~1.0x by\n"
      "construction (both systems execute the same native code).\n");
  return 0;
}
