// Regenerates Table V: "Slowdown ratio (median slowdown ratio, lower is
// better)" — the cost of the recovery instrumentation on the multiserver
// baseline, in three configurations:
//
//   Without opt — undo-log updates on every store, even after the recovery
//                 window closed (ckpt::Mode::kAlways);
//   Pessimistic — window-gated logging, any outbound message closes windows;
//   Enhanced    — window-gated logging, only state-modifying SEEPs close.
//
// Paper reference geomeans: 1.235 (without opt), 1.046 (pessimistic),
// 1.054 (enhanced) — i.e. the SIV-D optimization collapses ~23% overhead
// to ~5%, and pessimistic is slightly cheaper than enhanced because its
// windows (and hence logging spans) are shorter.
//
// The binary also carries the dispatch-shape check for the declarative
// protocol spec: `--dispatch-only` replays the syscall-heavy message mix
// through the flat handler table and through the per-server `switch` it
// replaced, and fails (exit 1) if the table path costs more than 1% extra.
//
// Environment: OSIRIS_RUNS (default 11), OSIRIS_ITER_SCALE (default 1.0),
// OSIRIS_DISPATCH_ITERS (default 2000000).
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "kernel/kernel.hpp"
#include "servers/msg_spec.hpp"
#include "support/stats.hpp"
#include "support/table_printer.hpp"
#include "workload/unixbench.hpp"

using namespace osiris;
using namespace osiris::workload;

namespace {

struct Config {
  const char* name;
  os::OsConfig cfg;
};

// --- Dispatch shape: flat handler table vs the retired switch ---------------
//
// The spec refactor replaced every server's `switch (m.type)` with one flat
// handler table indexed by spec row (servers/server_base.hpp): type -> row is
// a compile-time array (spec_detail::kIndex — one subtract, one bounds check,
// one load, no hashing), row -> handler is a second array load, then an
// indirect member call. This harness runs both shapes over identical handler
// bodies and the message mix of the syscall-heavy UB workload (getpid every
// iteration, getuid every 8th — see ub_syscall), padded with the VFS
// open/read/write/close quartet so the switch has a realistic case count.

#define BENCH_NOINLINE __attribute__((noinline))

// The flat index is genuinely compile-time: no hashing can hide here.
static_assert(servers::find_msg_spec(servers::PM_GETPID)->type == servers::PM_GETPID);
static_assert(servers::find_msg_spec(0x7777) == nullptr);

struct MiniServer {
  std::uint64_t acc = 0;

  // Handler bodies are shared by both shapes and kept out-of-line, like the
  // real servers' member handlers were on the old switch path.
  BENCH_NOINLINE void h_getpid(const kernel::Message& m) { acc += m.arg[0] + 1; }
  BENCH_NOINLINE void h_getuid(const kernel::Message& m) { acc += m.arg[0] + 2; }
  BENCH_NOINLINE void h_open(const kernel::Message& m) { acc += m.arg[0] + 3; }
  BENCH_NOINLINE void h_read(const kernel::Message& m) { acc += m.arg[1] + 4; }
  BENCH_NOINLINE void h_write(const kernel::Message& m) { acc += m.arg[1] + 5; }
  BENCH_NOINLINE void h_close(const kernel::Message& m) { acc += m.arg[0] + 6; }

  using Handler = void (MiniServer::*)(const kernel::Message&);
  std::array<Handler, servers::kMsgSpecCount> table{};

  void reg(std::uint32_t type, Handler h) {
    table[static_cast<std::size_t>(servers::find_msg_spec(type) - servers::kMsgSpecTable)] = h;
  }

  MiniServer() {
    reg(servers::PM_GETPID, &MiniServer::h_getpid);
    reg(servers::PM_GETUID, &MiniServer::h_getuid);
    reg(servers::VFS_OPEN, &MiniServer::h_open);
    reg(servers::VFS_READ, &MiniServer::h_read);
    reg(servers::VFS_WRITE, &MiniServer::h_write);
    reg(servers::VFS_CLOSE, &MiniServer::h_close);
  }

  BENCH_NOINLINE void dispatch_table(const kernel::Message& m) {
    const servers::MsgSpec* spec = servers::find_msg_spec(m.type);
    const Handler h = table[static_cast<std::size_t>(spec - servers::kMsgSpecTable)];
    if (h != nullptr) (this->*h)(m);
  }

  BENCH_NOINLINE void dispatch_switch(const kernel::Message& m) {
    switch (m.type) {
      case servers::PM_GETPID: return h_getpid(m);
      case servers::PM_GETUID: return h_getuid(m);
      case servers::VFS_OPEN: return h_open(m);
      case servers::VFS_READ: return h_read(m);
      case servers::VFS_WRITE: return h_write(m);
      case servers::VFS_CLOSE: return h_close(m);
      default: return;
    }
  }
};

std::vector<kernel::Message> syscall_mix() {
  // Eight ub_syscall iterations: 8x getpid + 1x getuid, plus one VFS quartet
  // for case-count realism. Repeated to defeat trivial branch prediction on
  // a too-short stream.
  std::vector<kernel::Message> mix;
  for (int rep = 0; rep < 16; ++rep) {
    for (int i = 0; i < 8; ++i) mix.push_back(kernel::make_msg(servers::PM_GETPID));
    mix.push_back(kernel::make_msg(servers::PM_GETUID));
    mix.push_back(kernel::make_msg(servers::VFS_OPEN));
    mix.push_back(kernel::make_msg(servers::VFS_READ, 3, 0, 64));
    mix.push_back(kernel::make_msg(servers::VFS_WRITE, 3, 0, 64));
    mix.push_back(kernel::make_msg(servers::VFS_CLOSE, 3));
  }
  return mix;
}

template <typename Dispatch>
double time_dispatch(MiniServer& srv, const std::vector<kernel::Message>& mix,
                     std::uint64_t iters, Dispatch dispatch) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    for (const kernel::Message& m : mix) (srv.*dispatch)(m);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// The ≤1% budget is measured where it matters: the extra nanoseconds the
/// table shape costs per dispatch, relative to what the syscall-heavy
/// workload actually spends per syscall end-to-end (checkpoint scoping,
/// window bookkeeping, kernel queueing). A naked two-array-load-plus-
/// indirect-call is a few ns dearer than a naked jump table, but a request
/// costs three orders of magnitude more than either shape.
///
/// Min-of-runs with the two shapes interleaved: the minimum is the least
/// noisy point estimate for a code path's true cost, and interleaving
/// spreads frequency drift evenly.
bool check_dispatch_overhead(int runs) {
  const std::uint64_t base_iters = std::getenv("OSIRIS_DISPATCH_ITERS")
                                       ? std::strtoull(std::getenv("OSIRIS_DISPATCH_ITERS"),
                                                       nullptr, 10)
                                       : 2000000;
  constexpr double kBudgetPct = 1.0;  // table shape may cost at most 1% extra
  MiniServer srv;
  const std::vector<kernel::Message> mix = syscall_mix();
  const std::uint64_t mix_iters = std::max<std::uint64_t>(1, base_iters / mix.size());

  // Micro: per-dispatch cost of each shape over the syscall-heavy mix.
  (void)time_dispatch(srv, mix, mix_iters / 4 + 1, &MiniServer::dispatch_switch);
  (void)time_dispatch(srv, mix, mix_iters / 4 + 1, &MiniServer::dispatch_table);
  double sw = 1e300, tab = 1e300;
  for (int r = 0; r < runs; ++r) {
    sw = std::min(sw, time_dispatch(srv, mix, mix_iters, &MiniServer::dispatch_switch));
    tab = std::min(tab, time_dispatch(srv, mix, mix_iters, &MiniServer::dispatch_table));
  }
  const double dispatches = static_cast<double>(mix_iters) * static_cast<double>(mix.size());
  const double sw_ns = sw * 1e9 / dispatches;
  const double tab_ns = tab * 1e9 / dispatches;
  const double delta_ns = std::max(0.0, tab_ns - sw_ns);
  std::printf("dispatch shape: table %.2f ns  switch %.2f ns  delta %.2f ns "
              "(min of %d runs, %llu dispatches each)\n",
              tab_ns, sw_ns, delta_ns, runs,
              static_cast<unsigned long long>(dispatches));

  // End-to-end: per-syscall cost of the syscall-heavy workload under the
  // instrumented configuration the table actually serves. ub_syscall issues
  // 9 syscalls per 8 iterations (getpid every pass, getuid every 8th).
  os::OsConfig enh;
  enh.policy = seep::Policy::kEnhanced;
  enh.ckpt_mode = ckpt::Mode::kWindowOnly;
  const UbWorkload& w = ub_workload("syscall");
  (void)run_ub_microkernel(enh, w, w.default_iters);
  double wall = 1e300;
  for (int r = 0; r < std::min(runs, 5); ++r) {
    wall = std::min(wall, run_ub_microkernel(enh, w, w.default_iters));
  }
  const double syscalls = static_cast<double>(w.default_iters) * 9.0 / 8.0;
  const double per_syscall_ns = wall * 1e9 / syscalls;

  // Two table dispatches per syscall is already generous (the server does
  // one; the client-side reply path never touches the handler table).
  const double overhead_pct = 2.0 * delta_ns / per_syscall_ns * 100.0;
  const bool ok = overhead_pct <= kBudgetPct;
  std::printf("syscall workload: %.0f ns/syscall end-to-end -> table dispatch "
              "adds %+.3f%% (budget: +%.0f%%) — %s\n",
              per_syscall_ns, overhead_pct, kBudgetPct, ok ? "OK" : "OVER BUDGET");
  // acc keeps the handler bodies observable; print it so nothing folds away.
  std::printf("(checksum %llu)\n", static_cast<unsigned long long>(srv.acc));
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const int runs = std::getenv("OSIRIS_RUNS") ? std::atoi(std::getenv("OSIRIS_RUNS")) : 11;
  if (argc > 1 && std::strcmp(argv[1], "--dispatch-only") == 0) {
    return check_dispatch_overhead(runs) ? 0 : 1;
  }
  const double scale =
      std::getenv("OSIRIS_ITER_SCALE") ? std::atof(std::getenv("OSIRIS_ITER_SCALE")) : 1.0;

  os::OsConfig baseline;
  baseline.recovery_enabled = false;
  baseline.heartbeat_interval = 0;
  baseline.ckpt_mode = ckpt::Mode::kOff;

  os::OsConfig noopt;
  noopt.policy = seep::Policy::kEnhanced;
  noopt.ckpt_mode = ckpt::Mode::kAlways;  // the paper's unoptimized build

  os::OsConfig pess;
  pess.policy = seep::Policy::kPessimistic;
  pess.ckpt_mode = ckpt::Mode::kWindowOnly;

  os::OsConfig enh;
  enh.policy = seep::Policy::kEnhanced;
  enh.ckpt_mode = ckpt::Mode::kWindowOnly;

  // Enhanced plus structured event tracing: the flight-recorder rings are
  // meant to be cheap enough to leave on during experiments, so their cost
  // is measured here alongside the instrumentation they observe. (In an
  // OSIRIS_TRACE=OFF build the flag is inert and this column equals
  // "Enhanced" up to noise.)
  os::OsConfig traced = enh;
  traced.trace_enabled = true;

  // Enhanced plus the page tier and the MB-scale aux state it serves
  // (DESIGN.md §17): DS's blob table and VFS's op journal. Not an isolated
  // tier cost — the slots knobs add the journaling/blob work itself, which
  // the other columns never execute. BENCH_ckpt.json's sweep separates the
  // tier's capture cost from the feature work.
  os::OsConfig paged = enh;
  paged.ckpt_pages.enabled = true;
  paged.ds_blob_slots = 256;
  paged.vfs_journal_slots = 512;

  const std::vector<Config> configs = {{"Without opt.", noopt},
                                       {"Pessimistic", pess},
                                       {"Enhanced", enh},
                                       {"Enhanced+trace", traced},
                                       {"Enhanced+pages", paged}};

  std::printf("Table V — instrumentation slowdown vs uninstrumented baseline "
              "(median of %d runs)\n\n", runs);

  TablePrinter table({"Benchmark", "Without opt.", "Pessimistic", "Enhanced", "Enhanced+trace",
                      "Enhanced+pages"});
  std::vector<std::vector<double>> ratios(configs.size());
  for (const UbWorkload& w : ub_workloads()) {
    const auto iters = static_cast<std::uint64_t>(static_cast<double>(w.default_iters) * scale);
    // Warm up (CPU frequency, allocator, caches), then interleave the
    // configurations round-robin so drift hits all of them equally.
    (void)run_ub_microkernel(baseline, w, iters);
    std::vector<double> base_times;
    std::vector<std::vector<double>> cfg_times(configs.size());
    for (int r = 0; r < runs; ++r) {
      base_times.push_back(run_ub_microkernel(baseline, w, iters));
      for (std::size_t c = 0; c < configs.size(); ++c) {
        cfg_times[c].push_back(run_ub_microkernel(configs[c].cfg, w, iters));
      }
    }
    const double base_med = stats::median(base_times);
    std::vector<std::string> row = {w.name};
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const double ratio = stats::median(cfg_times[c]) / base_med;
      ratios[c].push_back(ratio);
      row.push_back(TablePrinter::fmt(ratio, 3));
    }
    table.add_row(row);
    std::fflush(stdout);
  }
  table.add_separator();
  std::vector<std::string> geo_row = {"geomean"};
  for (std::size_t c = 0; c < configs.size(); ++c) {
    geo_row.push_back(TablePrinter::fmt(stats::geomean(ratios[c]), 3));
  }
  table.add_row(geo_row);
  table.print();
  const double trace_overhead =
      stats::geomean(ratios[3]) / stats::geomean(ratios[2]) - 1.0;
  const double pages_overhead =
      stats::geomean(ratios[4]) / stats::geomean(ratios[2]) - 1.0;
  std::printf(
      "\npaper geomeans: 1.235 / 1.046 / 1.054 — disabling undo-log updates\n"
      "outside the recovery window collapses the overhead from ~23%% to ~5%%;\n"
      "compute-bound rows stay at ~1.00 in every configuration.\n"
      "tracing overhead on top of Enhanced: %+.1f%% (budget: <5%%)\n"
      "Enhanced+pages vs Enhanced: %+.1f%% — includes the blob/journal work\n"
      "itself (those tables don't exist in the other columns), not just the\n"
      "tier's capture cost; BENCH_ckpt.json isolates the latter.\n\n",
      trace_overhead * 100.0, pages_overhead * 100.0);
  return check_dispatch_overhead(runs) ? 0 : 1;
}
