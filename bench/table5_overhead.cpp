// Regenerates Table V: "Slowdown ratio (median slowdown ratio, lower is
// better)" — the cost of the recovery instrumentation on the multiserver
// baseline, in three configurations:
//
//   Without opt — undo-log updates on every store, even after the recovery
//                 window closed (ckpt::Mode::kAlways);
//   Pessimistic — window-gated logging, any outbound message closes windows;
//   Enhanced    — window-gated logging, only state-modifying SEEPs close.
//
// Paper reference geomeans: 1.235 (without opt), 1.046 (pessimistic),
// 1.054 (enhanced) — i.e. the SIV-D optimization collapses ~23% overhead
// to ~5%, and pessimistic is slightly cheaper than enhanced because its
// windows (and hence logging spans) are shorter.
//
// Environment: OSIRIS_RUNS (default 11), OSIRIS_ITER_SCALE (default 1.0).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "support/stats.hpp"
#include "support/table_printer.hpp"
#include "workload/unixbench.hpp"

using namespace osiris;
using namespace osiris::workload;

namespace {

struct Config {
  const char* name;
  os::OsConfig cfg;
};

}  // namespace

int main() {
  const int runs = std::getenv("OSIRIS_RUNS") ? std::atoi(std::getenv("OSIRIS_RUNS")) : 11;
  const double scale =
      std::getenv("OSIRIS_ITER_SCALE") ? std::atof(std::getenv("OSIRIS_ITER_SCALE")) : 1.0;

  os::OsConfig baseline;
  baseline.recovery_enabled = false;
  baseline.heartbeat_interval = 0;
  baseline.ckpt_mode = ckpt::Mode::kOff;

  os::OsConfig noopt;
  noopt.policy = seep::Policy::kEnhanced;
  noopt.ckpt_mode = ckpt::Mode::kAlways;  // the paper's unoptimized build

  os::OsConfig pess;
  pess.policy = seep::Policy::kPessimistic;
  pess.ckpt_mode = ckpt::Mode::kWindowOnly;

  os::OsConfig enh;
  enh.policy = seep::Policy::kEnhanced;
  enh.ckpt_mode = ckpt::Mode::kWindowOnly;

  // Enhanced plus structured event tracing: the flight-recorder rings are
  // meant to be cheap enough to leave on during experiments, so their cost
  // is measured here alongside the instrumentation they observe. (In an
  // OSIRIS_TRACE=OFF build the flag is inert and this column equals
  // "Enhanced" up to noise.)
  os::OsConfig traced = enh;
  traced.trace_enabled = true;

  const std::vector<Config> configs = {{"Without opt.", noopt},
                                       {"Pessimistic", pess},
                                       {"Enhanced", enh},
                                       {"Enhanced+trace", traced}};

  std::printf("Table V — instrumentation slowdown vs uninstrumented baseline "
              "(median of %d runs)\n\n", runs);

  TablePrinter table({"Benchmark", "Without opt.", "Pessimistic", "Enhanced", "Enhanced+trace"});
  std::vector<std::vector<double>> ratios(configs.size());
  for (const UbWorkload& w : ub_workloads()) {
    const auto iters = static_cast<std::uint64_t>(static_cast<double>(w.default_iters) * scale);
    // Warm up (CPU frequency, allocator, caches), then interleave the
    // configurations round-robin so drift hits all of them equally.
    (void)run_ub_microkernel(baseline, w, iters);
    std::vector<double> base_times;
    std::vector<std::vector<double>> cfg_times(configs.size());
    for (int r = 0; r < runs; ++r) {
      base_times.push_back(run_ub_microkernel(baseline, w, iters));
      for (std::size_t c = 0; c < configs.size(); ++c) {
        cfg_times[c].push_back(run_ub_microkernel(configs[c].cfg, w, iters));
      }
    }
    const double base_med = stats::median(base_times);
    std::vector<std::string> row = {w.name};
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const double ratio = stats::median(cfg_times[c]) / base_med;
      ratios[c].push_back(ratio);
      row.push_back(TablePrinter::fmt(ratio, 3));
    }
    table.add_row(row);
    std::fflush(stdout);
  }
  table.add_separator();
  std::vector<std::string> geo_row = {"geomean"};
  for (std::size_t c = 0; c < configs.size(); ++c) {
    geo_row.push_back(TablePrinter::fmt(stats::geomean(ratios[c]), 3));
  }
  table.add_row(geo_row);
  table.print();
  const double trace_overhead =
      stats::geomean(ratios[3]) / stats::geomean(ratios[2]) - 1.0;
  std::printf(
      "\npaper geomeans: 1.235 / 1.046 / 1.054 — disabling undo-log updates\n"
      "outside the recovery window collapses the overhead from ~23%% to ~5%%;\n"
      "compute-bound rows stay at ~1.00 in every configuration.\n"
      "tracing overhead on top of Enhanced: %+.1f%% (budget: <5%%)\n",
      trace_overhead * 100.0);
  return 0;
}
