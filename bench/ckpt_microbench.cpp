// Microbenchmarks (google-benchmark) for the checkpointing substrate — the
// ablation behind Table V: what one instrumented store costs in each
// instrumentation mode, and what checkpoint/rollback cost at the undo-log
// sizes the servers actually produce.
#include <benchmark/benchmark.h>

#include "ckpt/cell.hpp"
#include "ckpt/context.hpp"
#include "ckpt/undo_log.hpp"

using namespace osiris;

namespace {

void BM_UndoLogRecord(benchmark::State& state) {
  // Same address every iteration: after the first capture per window this
  // measures the duplicate-store filter hit path (the loop-heavy-handler
  // shape the filter exists for).
  ckpt::UndoLog log;
  std::uint64_t cell = 0;
  for (auto _ : state) {
    log.record(&cell, sizeof cell);
    if (log.entry_count() >= 1024) log.checkpoint();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UndoLogRecord);

void BM_UndoLogRecordDistinct(benchmark::State& state) {
  // Distinct addresses: every record misses the filter and takes the arena
  // append path (entry header + old-byte capture in one allocation).
  ckpt::UndoLog log;
  std::uint64_t cells[1024] = {};
  std::size_t i = 0;
  for (auto _ : state) {
    log.record(&cells[i], sizeof cells[i]);
    if (++i == 1024) {
      i = 0;
      log.checkpoint();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UndoLogRecordDistinct);

void BM_UndoLogRollback(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ckpt::UndoLog log;
  std::vector<std::uint64_t> cells(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      log.record(&cells[i], sizeof cells[i]);
      cells[i] = i;
    }
    log.rollback();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_UndoLogRollback)->Arg(8)->Arg(64)->Arg(512);

void BM_CheckpointReset(benchmark::State& state) {
  ckpt::UndoLog log;
  std::uint64_t cell = 0;
  for (auto _ : state) {
    log.record(&cell, sizeof cell);
    log.checkpoint();
  }
}
BENCHMARK(BM_CheckpointReset);

// One instrumented store under each instrumentation mode — the per-store
// cost structure behind Table V's "without opt" vs optimized columns.
void BM_CellStore(benchmark::State& state) {
  const auto mode = static_cast<ckpt::Mode>(state.range(0));
  const bool window_open = state.range(1) != 0;
  ckpt::Context ctx(mode);
  ctx.set_window_open(window_open);
  ckpt::Context::Scope scope(&ctx);
  ckpt::Cell<std::uint64_t> cell;
  std::uint64_t v = 0;
  for (auto _ : state) {
    cell = ++v;
    if (ctx.log().entry_count() >= 4096) ctx.log().checkpoint();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CellStore)
    ->ArgNames({"mode", "window"})
    ->Args({static_cast<int>(ckpt::Mode::kOff), 0})         // uninstrumented
    ->Args({static_cast<int>(ckpt::Mode::kAlways), 0})      // without opt, window closed
    ->Args({static_cast<int>(ckpt::Mode::kAlways), 1})      // without opt, window open
    ->Args({static_cast<int>(ckpt::Mode::kWindowOnly), 0})  // optimized, window closed
    ->Args({static_cast<int>(ckpt::Mode::kWindowOnly), 1});  // optimized, window open

void BM_TableAllocFree(benchmark::State& state) {
  ckpt::Context ctx(ckpt::Mode::kWindowOnly);
  ctx.set_window_open(true);
  ckpt::Context::Scope scope(&ctx);
  ckpt::Table<std::uint64_t, 64> table;
  for (auto _ : state) {
    const std::size_t i = table.alloc();
    table.mutate(i) = 42;
    table.free(i);
    ctx.log().checkpoint();
  }
}
BENCHMARK(BM_TableAllocFree);

// Alloc/free cycling in a nearly full table — the fd/proc/inode-table shape
// on a busy system, where a linear first-free scan pays O(N) per alloc and
// the free-list head stays O(1).
void BM_TableAllocNearFull(benchmark::State& state) {
  ckpt::Context ctx(ckpt::Mode::kWindowOnly);
  ctx.set_window_open(true);
  ckpt::Context::Scope scope(&ctx);
  ckpt::Table<std::uint64_t, 256> table;
  for (std::size_t i = 0; i < 255; ++i) (void)table.alloc();
  for (auto _ : state) {
    const std::size_t i = table.alloc();
    table.free(i);
    ctx.log().checkpoint();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableAllocNearFull);

// Restart-phase state transfer at VM scale (the dominant clone copy).
void BM_StateTransfer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> src(n), dst(n);
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StateTransfer)->Arg(4 << 10)->Arg(64 << 10)->Arg(512 << 10);

}  // namespace

BENCHMARK_MAIN();
