// Microbenchmarks (google-benchmark) for the checkpointing substrate — the
// ablation behind Table V: what one instrumented store costs in each
// instrumentation mode, and what checkpoint/rollback cost at the undo-log
// sizes the servers actually produce.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "ckpt/cell.hpp"
#include "ckpt/context.hpp"
#include "ckpt/page_store.hpp"
#include "ckpt/undo_log.hpp"

using namespace osiris;

namespace {

void BM_UndoLogRecord(benchmark::State& state) {
  // Same address every iteration: after the first capture per window this
  // measures the duplicate-store filter hit path (the loop-heavy-handler
  // shape the filter exists for).
  ckpt::UndoLog log;
  std::uint64_t cell = 0;
  for (auto _ : state) {
    log.record(&cell, sizeof cell);
    if (log.entry_count() >= 1024) log.checkpoint();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UndoLogRecord);

void BM_UndoLogRecordDistinct(benchmark::State& state) {
  // Distinct addresses: every record misses the filter and takes the arena
  // append path (entry header + old-byte capture in one allocation).
  ckpt::UndoLog log;
  std::uint64_t cells[1024] = {};
  std::size_t i = 0;
  for (auto _ : state) {
    log.record(&cells[i], sizeof cells[i]);
    if (++i == 1024) {
      i = 0;
      log.checkpoint();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UndoLogRecordDistinct);

void BM_UndoLogRollback(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ckpt::UndoLog log;
  std::vector<std::uint64_t> cells(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      log.record(&cells[i], sizeof cells[i]);
      cells[i] = i;
    }
    log.rollback();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_UndoLogRollback)->Arg(8)->Arg(64)->Arg(512);

void BM_CheckpointReset(benchmark::State& state) {
  ckpt::UndoLog log;
  std::uint64_t cell = 0;
  for (auto _ : state) {
    log.record(&cell, sizeof cell);
    log.checkpoint();
  }
}
BENCHMARK(BM_CheckpointReset);

// One instrumented store under each instrumentation mode — the per-store
// cost structure behind Table V's "without opt" vs optimized columns.
void BM_CellStore(benchmark::State& state) {
  const auto mode = static_cast<ckpt::Mode>(state.range(0));
  const bool window_open = state.range(1) != 0;
  ckpt::Context ctx(mode);
  ctx.set_window_open(window_open);
  ckpt::Context::Scope scope(&ctx);
  ckpt::Cell<std::uint64_t> cell;
  std::uint64_t v = 0;
  for (auto _ : state) {
    cell = ++v;
    if (ctx.log().entry_count() >= 4096) ctx.log().checkpoint();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CellStore)
    ->ArgNames({"mode", "window"})
    ->Args({static_cast<int>(ckpt::Mode::kOff), 0})         // uninstrumented
    ->Args({static_cast<int>(ckpt::Mode::kAlways), 0})      // without opt, window closed
    ->Args({static_cast<int>(ckpt::Mode::kAlways), 1})      // without opt, window open
    ->Args({static_cast<int>(ckpt::Mode::kWindowOnly), 0})  // optimized, window closed
    ->Args({static_cast<int>(ckpt::Mode::kWindowOnly), 1});  // optimized, window open

void BM_TableAllocFree(benchmark::State& state) {
  ckpt::Context ctx(ckpt::Mode::kWindowOnly);
  ctx.set_window_open(true);
  ckpt::Context::Scope scope(&ctx);
  ckpt::Table<std::uint64_t, 64> table;
  for (auto _ : state) {
    const std::size_t i = table.alloc();
    table.mutate(i) = 42;
    table.free(i);
    ctx.log().checkpoint();
  }
}
BENCHMARK(BM_TableAllocFree);

// Alloc/free cycling in a nearly full table — the fd/proc/inode-table shape
// on a busy system, where a linear first-free scan pays O(N) per alloc and
// the free-list head stays O(1).
void BM_TableAllocNearFull(benchmark::State& state) {
  ckpt::Context ctx(ckpt::Mode::kWindowOnly);
  ctx.set_window_open(true);
  ckpt::Context::Scope scope(&ctx);
  ckpt::Table<std::uint64_t, 256> table;
  for (std::size_t i = 0; i < 255; ++i) (void)table.alloc();
  for (auto _ : state) {
    const std::size_t i = table.alloc();
    table.free(i);
    ctx.log().checkpoint();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableAllocNearFull);

// --- DESIGN.md §17: state-size sweep, 1 KB -> 256 MB ------------------------
//
// One fixed per-window workload — up to 32 scattered 64 B stores, page-strided
// so every store lands on a distinct page where the state is big enough — run
// against state buffers from the paper's KB scale up to the ROADMAP's 256 MB,
// through both checkpoint tiers:
//
//   SweepWindow*    steady-state logging + checkpoint cost per window. Both
//                   tiers are flat in S; the page tier pays its 4 KB-per-
//                   touched-page capture floor, the arena pays per-record
//                   headers on 64 B captures.
//   SweepRecovery*  crash cost per recovery: rollback plus the restart-phase
//                   state transfer. Full copy (the only option without the
//                   tier) is linear in S; delta restart moves dirty pages
//                   only, so its curve is flat up to the bitmap walk (one
//                   word per 256 KB) — the sublinear claim BENCH_ckpt.json
//                   pins for EXPERIMENTS.md's overhead-vs-size table.

constexpr std::size_t kSweepStoreBytes = 64;

std::size_t sweep_stores(std::size_t len) {
  return std::min<std::size_t>(32, len / kSweepStoreBytes);
}

// The store loop both tiers run: scattered small dirties, then checkpoint.
template <typename Ctx>
void sweep_window(Ctx& ctx, std::byte* buf, std::size_t len) {
  const std::size_t n = sweep_stores(len);
  const std::size_t stride = len / n;
  for (std::size_t i = 0; i < n; ++i) {
    std::byte* p = buf + i * stride;
    ckpt::Context::log_write(p, kSweepStoreBytes);
    p[0] = static_cast<std::byte>(i);
  }
  (void)ctx;
}

void BM_SweepWindowArena(benchmark::State& state) {
  const std::size_t len = static_cast<std::size_t>(state.range(0)) << 10;
  std::vector<std::byte> buf(len);
  ckpt::Context ctx(ckpt::Mode::kWindowOnly);
  ctx.set_window_open(true);
  ckpt::Context::Scope scope(&ctx);
  for (auto _ : state) {
    sweep_window(ctx, buf.data(), len);
    ctx.log().checkpoint();
  }
  state.counters["logged_bytes"] = static_cast<double>(ctx.log().stats().bytes_logged) /
                                   static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sweep_stores(len)));
}
BENCHMARK(BM_SweepWindowArena)
    ->ArgName("kb")
    ->Arg(1)->Arg(16)->Arg(256)->Arg(1 << 10)->Arg(16 << 10)->Arg(64 << 10)->Arg(256 << 10);

void BM_SweepWindowPages(benchmark::State& state) {
  const std::size_t want = static_cast<std::size_t>(state.range(0)) << 10;
  ckpt::PagesConfig pcfg;
  pcfg.enabled = true;
  const std::size_t len = std::max(want, pcfg.page_bytes);  // PagedTable rounds up
  std::vector<std::byte> buf(len);
  ckpt::PageStore pages(pcfg);
  pages.register_region(buf.data(), len);
  ckpt::Context ctx(ckpt::Mode::kWindowOnly);
  ctx.set_window_open(true);
  ctx.set_page_store(&pages);
  ckpt::Context::Scope scope(&ctx);
  for (auto _ : state) {
    sweep_window(ctx, buf.data(), len);
    ctx.log().checkpoint();
  }
  state.counters["logged_bytes"] = static_cast<double>(pages.stats().page_bytes_logged) /
                                   static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sweep_stores(len)));
}
BENCHMARK(BM_SweepWindowPages)
    ->ArgName("kb")
    ->Arg(1)->Arg(16)->Arg(256)->Arg(1 << 10)->Arg(16 << 10)->Arg(64 << 10)->Arg(256 << 10);

// Without the page tier a crash pays rollback plus a whole-image clone copy.
void BM_SweepRecoveryFullCopy(benchmark::State& state) {
  const std::size_t len = static_cast<std::size_t>(state.range(0)) << 10;
  std::vector<std::byte> buf(len), clone(len);
  ckpt::Context ctx(ckpt::Mode::kWindowOnly);
  ctx.set_window_open(true);
  ckpt::Context::Scope scope(&ctx);
  for (auto _ : state) {
    sweep_window(ctx, buf.data(), len);
    std::memcpy(clone.data(), buf.data(), len);  // restart phase: full image
    ctx.log().rollback();
    benchmark::DoNotOptimize(clone.data());
  }
  state.counters["restart_bytes"] = static_cast<double>(len);
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(len));
}
BENCHMARK(BM_SweepRecoveryFullCopy)
    ->ArgName("kb")
    ->Arg(1)->Arg(16)->Arg(256)->Arg(1 << 10)->Arg(16 << 10)->Arg(64 << 10)->Arg(256 << 10);

// With the tier the restart phase moves transfer-dirty pages only; rollback
// re-marks restored pages so the clone never misses a byte (engine order:
// restart, then rollback).
void BM_SweepRecoveryDelta(benchmark::State& state) {
  const std::size_t want = static_cast<std::size_t>(state.range(0)) << 10;
  ckpt::PagesConfig pcfg;
  pcfg.enabled = true;
  const std::size_t len = std::max(want, pcfg.page_bytes);
  std::vector<std::byte> buf(len), clone(len);
  ckpt::PageStore pages(pcfg);
  pages.register_region(buf.data(), len);
  ckpt::Context ctx(ckpt::Mode::kWindowOnly);
  ctx.set_window_open(true);
  ctx.set_page_store(&pages);
  ckpt::Context::Scope scope(&ctx);
  std::byte* clone_base = clone.data();
  std::size_t moved = 0;
  for (auto _ : state) {
    sweep_window(ctx, buf.data(), len);
    moved += pages.sync_transfer_dirty(
        [clone_base](std::size_t off, const std::byte* src, std::size_t n) {
          std::memcpy(clone_base + off, src, n);
        });
    ctx.log().rollback();
    benchmark::DoNotOptimize(clone_base);
  }
  state.counters["restart_bytes"] =
      static_cast<double>(moved) / static_cast<double>(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(moved));
}
BENCHMARK(BM_SweepRecoveryDelta)
    ->ArgName("kb")
    ->Arg(1)->Arg(16)->Arg(256)->Arg(1 << 10)->Arg(16 << 10)->Arg(64 << 10)->Arg(256 << 10);

// Restart-phase state transfer at VM scale (the dominant clone copy).
void BM_StateTransfer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> src(n), dst(n);
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StateTransfer)->Arg(4 << 10)->Arg(64 << 10)->Arg(512 << 10);

}  // namespace

BENCHMARK_MAIN();
