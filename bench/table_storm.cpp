// Liveness-fault (storm) detection — the health monitor's stress test.
//
// Storm faults never crash or hang their host: a spinning handler keeps
// answering heartbeats while it burns every dispatch, and a flooding one
// drowns a victim in well-formed requests. Crash/hang detection is
// structurally blind to both, so this table measures the *physiological*
// detector instead: per storm type, how many runs the ladder's storm rung
// caught (throttle, then quarantine + fault disarm), how many ran starved,
// and how long detection took from storm onset to the throttle engaging.
// Control runs (monitor on, nothing armed) pin the false-positive rate to
// zero.
//
// Note on latency units: spin storms freeze the virtual clock (the host
// drains dispatches without ever going idle), so their detection latency
// legitimately reads ~0 ticks; flood storms are clock-pumped and accumulate
// real virtual time. Both are reported.
//
// Environment:
//   OSIRIS_SAMPLE           keep only every Nth injection (default 1 = all)
//   OSIRIS_JOBS / --jobs=N  worker threads (default 1; 0 = all cores)
//   --out FILE.json         machine-readable results (BENCH_storm.json)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign_cli.hpp"
#include "support/table_printer.hpp"
#include "workload/campaign.hpp"

using namespace osiris;
using namespace osiris::workload;

namespace {

struct TypeTotals {
  int runs = 0;
  int detected = 0;
  int starved = 0;
  int false_positive = 0;
  int clean = 0;
  int quarantined = 0;
  int disarmed = 0;
  std::uint64_t latency_sum = 0;
  Tick latency_max = 0;

  void add(const StormResult& r) {
    ++runs;
    switch (r.cls) {
      case StormClass::kDetected: ++detected; break;
      case StormClass::kStarved: ++starved; break;
      case StormClass::kFalsePositive: ++false_positive; break;
      case StormClass::kClean: ++clean; break;
    }
    if (r.quarantined) ++quarantined;
    if (r.disarmed) ++disarmed;
    if (r.cls == StormClass::kDetected) {
      latency_sum += r.detection_latency;
      if (r.detection_latency > latency_max) latency_max = r.detection_latency;
    }
  }

  [[nodiscard]] double latency_mean() const {
    return detected == 0 ? 0.0
                         : static_cast<double>(latency_sum) / static_cast<double>(detected);
  }
};

const char* storm_type_name(fi::FaultType t) {
  switch (t) {
    case fi::FaultType::kHandlerSpin: return "handler-spin";
    case fi::FaultType::kChannelFlood: return "channel-flood";
    default: return "none (control)";
  }
}

std::string fmt1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  CampaignOptions opts;
  opts.jobs = bench::parse_jobs(argc, argv);
  const int sample =
      std::getenv("OSIRIS_SAMPLE") ? std::atoi(std::getenv("OSIRIS_SAMPLE")) : 1;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[i + 1];
  }

  std::vector<StormInjection> plan = plan_storm();
  if (sample > 1) {
    // Controls (site == nullptr) always survive thinning: the false-positive
    // column must never be vacuously zero.
    std::vector<StormInjection> sampled;
    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (plan[i].site == nullptr || i % static_cast<std::size_t>(sample) == 0) {
        sampled.push_back(plan[i]);
      }
    }
    plan = std::move(sampled);
  }

  std::printf("Storm detection (liveness faults vs the physiological health monitor)\n");
  std::printf("(%zu runs: persistent spin/flood per subsystem plus clean controls)\n\n",
              plan.size());
  std::fprintf(stderr, "[table_storm] %u worker(s)\n", campaign_jobs(opts.jobs));

  const seep::Policy policy = seep::Policy::kEnhanced;
  const std::vector<StormResult> results = run_storm_plan(policy, plan, opts);

  TypeTotals spin, flood, control;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (plan[i].site == nullptr) control.add(results[i]);
    else if (plan[i].type == fi::FaultType::kHandlerSpin) spin.add(results[i]);
    else flood.add(results[i]);
  }

  TablePrinter table({"Storm type", "Runs", "Detected", "Starved", "FalsePos",
                      "Quarantined", "MeanLat", "MaxLat"});
  for (const auto* row : {&spin, &flood, &control}) {
    const fi::FaultType t = row == &spin    ? fi::FaultType::kHandlerSpin
                            : row == &flood ? fi::FaultType::kChannelFlood
                                            : fi::FaultType::kNone;
    table.add_row({storm_type_name(t), std::to_string(row->runs),
                   std::to_string(row->detected), std::to_string(row->starved),
                   std::to_string(row->false_positive), std::to_string(row->quarantined),
                   fmt1(row->latency_mean()), std::to_string(row->latency_max)});
  }
  table.print();
  std::printf(
      "\nshape: Detected should cover every storm run (Starved empty — a\n"
      "starved run means the monitor slept through a storm), FalsePos must\n"
      "be zero everywhere, and quarantined runs disarm the fault so the\n"
      "component readmits clean; latency is in virtual ticks from storm\n"
      "onset to the throttle engaging\n");

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "table_storm: cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"table_storm\",\n  \"policy\": \"%s\",\n",
                 seep::policy_name(policy));
    std::fprintf(f, "  \"runs\": %zu,\n  \"sample\": %d,\n  \"types\": [\n", plan.size(),
                 sample);
    const TypeTotals* rows[] = {&spin, &flood, &control};
    const char* names[] = {"handler-spin", "channel-flood", "control"};
    for (int i = 0; i < 3; ++i) {
      const TypeTotals& r = *rows[i];
      std::fprintf(f,
                   "    {\"type\": \"%s\", \"runs\": %d, \"detected\": %d, \"starved\": %d,\n"
                   "     \"false_positive\": %d, \"quarantined\": %d, \"disarmed\": %d,\n"
                   "     \"detection_latency_mean_ticks\": %.1f, "
                   "\"detection_latency_max_ticks\": %llu}%s\n",
                   names[i], r.runs, r.detected, r.starved, r.false_positive, r.quarantined,
                   r.disarmed, r.latency_mean(),
                   static_cast<unsigned long long>(r.latency_max), i + 1 < 3 ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }

  // Self-checking exit: CI runs this binary as the storm acceptance gate.
  const bool ok = spin.detected == spin.runs && flood.detected == flood.runs &&
                  spin.false_positive == 0 && flood.false_positive == 0 &&
                  control.false_positive == 0;
  if (!ok) std::fprintf(stderr, "table_storm: ACCEPTANCE FAILED (see table)\n");
  return ok ? 0 : 1;
}
