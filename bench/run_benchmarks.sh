#!/usr/bin/env sh
# Run the checkpointing microbenchmarks and record the results as
# BENCH_ckpt.json at the repository root — the perf trajectory file that CI
# uploads as an artifact so future PRs can diff hot-path numbers.
#
# Usage: bench/run_benchmarks.sh [build-dir] [output-json]
#   build-dir    cmake build tree containing bench/ckpt_microbench
#                (default: build)
#   output-json  where to write the results (default: BENCH_ckpt.json next
#                to this script's repository root)
set -eu

script_dir=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
repo_root=$(dirname -- "$script_dir")

build_dir=${1:-"$repo_root/build"}
out=${2:-"$repo_root/BENCH_ckpt.json"}

bench_bin="$build_dir/bench/ckpt_microbench"
if [ ! -x "$bench_bin" ]; then
  echo "error: $bench_bin not found or not executable." >&2
  echo "build it first: cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' --target ckpt_microbench" >&2
  exit 1
fi

# benchmark_repetitions keeps runs short but smooths scheduler noise;
# report_aggregates_only keeps the JSON diffable (mean/median/stddev rows).
"$bench_bin" \
  --benchmark_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  > "$out"

echo "wrote $out"
