#!/usr/bin/env sh
# Run the perf-trajectory benchmarks and record their results at the
# repository root — the files CI uploads as artifacts so future PRs can diff
# hot-path numbers:
#
#   BENCH_ckpt.json     checkpointing microbenchmarks (google-benchmark)
#   BENCH_serving.json  open-loop serving load, baseline vs fast-path columns
#   BENCH_storm.json    storm-detection campaign (liveness faults vs the
#                       health monitor), incl. detection-latency columns
#
# Usage: bench/run_benchmarks.sh [--ckpt-only|--serving-only|--storm-only] [build-dir]
#   build-dir  cmake build tree containing the bench binaries (default: build)
#
# Fails loudly (non-zero) if a selected bench binary is missing: a silently
# skipped benchmark would leave a stale trajectory file for CI to upload.
set -eu

script_dir=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
repo_root=$(dirname -- "$script_dir")

run_ckpt=1
run_serving=1
run_storm=1
case "${1:-}" in
  --ckpt-only) run_serving=0; run_storm=0; shift ;;
  --serving-only) run_ckpt=0; run_storm=0; shift ;;
  --storm-only) run_ckpt=0; run_serving=0; shift ;;
esac

build_dir=${1:-"$repo_root/build"}
status=0

require_bin() {
  if [ ! -x "$1" ]; then
    echo "error: $1 not found or not executable." >&2
    echo "build it first: cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' --target $2" >&2
    return 1
  fi
}

if [ "$run_ckpt" = 1 ]; then
  ckpt_bin="$build_dir/bench/ckpt_microbench"
  if require_bin "$ckpt_bin" ckpt_microbench; then
    # benchmark_repetitions keeps runs short but smooths scheduler noise;
    # report_aggregates_only keeps the JSON diffable (mean/median/stddev rows).
    "$ckpt_bin" \
      --benchmark_format=json \
      --benchmark_repetitions=3 \
      --benchmark_report_aggregates_only=true \
      > "$repo_root/BENCH_ckpt.json"
    echo "wrote $repo_root/BENCH_ckpt.json"
  else
    status=1
  fi
fi

if [ "$run_serving" = 1 ]; then
  serving_bin="$build_dir/bench/serving_load"
  if require_bin "$serving_bin" serving_load; then
    "$serving_bin" \
      --clients "${OSIRIS_SERVING_CLIENTS:-32}" \
      --seconds "${OSIRIS_SERVING_SECONDS:-2}" \
      --out "$repo_root/BENCH_serving.json"
    echo "wrote $repo_root/BENCH_serving.json"
  else
    status=1
  fi
fi

if [ "$run_storm" = 1 ]; then
  storm_bin="$build_dir/bench/table_storm"
  if require_bin "$storm_bin" table_storm; then
    # The binary self-checks (detected == storm runs, zero false positives)
    # and exits non-zero on a miss, so a silently-broken monitor fails here.
    OSIRIS_JOBS="${OSIRIS_JOBS:-0}" "$storm_bin" \
      --out "$repo_root/BENCH_storm.json"
  else
    status=1
  fi
fi

exit $status
