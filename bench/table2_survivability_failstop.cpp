// Regenerates Table II: "Survivability under random fault injection of
// fail-stop failure-mode faults".
//
// Profiles the prototype test suite once, draws a fail-stop injection plan
// (null-deref at several execution points per triggered site), and applies
// the identical plan under all four recovery policies, classifying every
// run as pass / fail / shutdown / crash.
//
// Paper reference: stateless 19.6/0.0/0.0/80.4, naive 20.6/2.4/0.0/77.0,
// pessimistic 18.5/0.0/81.3/0.2, enhanced 25.6/6.5/66.1/1.9.
//
// Environment:
//   OSIRIS_POINTS_PER_SITE  trigger points per site (default 3)
//   OSIRIS_SAMPLE           keep only every Nth injection (default 1 = all)
//   OSIRIS_JOBS / --jobs=N  worker threads (default 1; 0 = all cores)
#include <cstdio>
#include <cstdlib>

#include "campaign_cli.hpp"
#include "support/table_printer.hpp"
#include "workload/campaign.hpp"

using namespace osiris;
using namespace osiris::workload;

int main(int argc, char** argv) {
  CampaignOptions opts;
  opts.jobs = bench::parse_jobs(argc, argv);
  const int points = std::getenv("OSIRIS_POINTS_PER_SITE")
                         ? std::atoi(std::getenv("OSIRIS_POINTS_PER_SITE"))
                         : 3;
  const int sample =
      std::getenv("OSIRIS_SAMPLE") ? std::atoi(std::getenv("OSIRIS_SAMPLE")) : 1;

  std::vector<Injection> plan = plan_failstop(points);
  if (sample > 1) {
    std::vector<Injection> sampled;
    for (std::size_t i = 0; i < plan.size(); i += sample) sampled.push_back(plan[i]);
    plan = std::move(sampled);
  }
  std::printf("Table II — survivability under fail-stop fault injection\n");
  std::printf("(%zu injections per policy; the same plan applied to every policy)\n\n",
              plan.size());
  std::fprintf(stderr, "[table2] %u worker(s)\n", campaign_jobs(opts.jobs));

  TablePrinter table({"Recovery mode", "Pass", "Fail", "Shutdown", "Crash"});
  for (auto policy : {seep::Policy::kStateless, seep::Policy::kNaive,
                      seep::Policy::kPessimistic, seep::Policy::kEnhanced}) {
    const CampaignTotals t = run_campaign(policy, plan, opts);
    table.add_row({seep::policy_name(policy), TablePrinter::pct(t.frac(t.pass)),
                   TablePrinter::pct(t.frac(t.fail)), TablePrinter::pct(t.frac(t.shutdown)),
                   TablePrinter::pct(t.frac(t.crash))});
    std::fflush(stdout);
  }
  table.print();
  std::printf(
      "\npaper: stateless 19.6/0.0/0.0/80.4  naive 20.6/2.4/0.0/77.0\n"
      "       pessimistic 18.5/0.0/81.3/0.2  enhanced 25.6/6.5/66.1/1.9\n"
      "shape: enhanced completes the most runs; windowed policies nearly\n"
      "eliminate crashes; stateless has no fail bucket and crashes dominate\n");
  return 0;
}
