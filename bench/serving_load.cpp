// Open-loop multi-client serving benchmark (DESIGN.md §14, EXPERIMENTS.md).
//
// N raw kernel clients (no fibers: each is a lightweight IClient registered
// with PM/VM/VFS/SYS as a boot process) fire requests at the servers with
// Poisson-ish arrivals drawn on the virtual clock, mixing bulk VFS I/O with
// VFS/PM/DS metadata traffic. Arrivals are open-loop: a client that is still
// waiting for a reply banks the arrival stamp and issues the request the
// moment the reply lands, so queueing delay is charged to the system, not
// silently absorbed by the load generator (no coordinated omission).
//
// Each run reports steady-state msgs/sec and p50/p99/p999 reply latency
// (host wall time — virtual ticks are identical across fast-path configs by
// construction, the observational-equivalence guarantee; what the fast path
// buys is host work per message). A faulted phase arms periodic fail-stop
// faults on VFS's busiest probe site and reports the recovery-induced
// latency-spike width on top of the same load.
//
// Configs swept: baseline (all fast-path flags off), each flag alone
// (arena / batching / zero-copy), and all flags together — the before/after
// columns for BENCH_serving.json. Acceptance: fastpath >= 1.5x baseline
// steady-state msgs/sec.
//
// A final miss-regime sweep (DESIGN.md §16) shrinks the block cache to an
// eighth of the working set and runs the full fast path with the VFS fiber
// path vs the FOM executor across an in-flight-depth axis (1, N/4, N
// clients): the executor overlaps the 40-tick disk waits the fiber path
// serializes, and the per-run fom_stats (parks, in_flight_high_water) land
// in the JSON so the overlap is auditable, not inferred.
//
// Usage: serving_load [--clients N] [--seconds S] [--interval TICKS]
//                     [--payload BYTES] [--seed S] [--profile mixed|bulk|meta]
//                     [--fault-interval N] [--out FILE.json]
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fi/registry.hpp"
#include "os/instance.hpp"
#include "servers/fom.hpp"
#include "servers/protocol.hpp"
#include "support/rng.hpp"

using namespace osiris;
using servers::O_CREAT;
using servers::O_RDWR;

namespace {

using HostClock = std::chrono::steady_clock;

double to_sec(HostClock::duration d) { return std::chrono::duration<double>(d).count(); }
std::uint64_t to_ns(HostClock::duration d) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

struct Options {
  int clients = 32;
  double seconds = 2.0;       // timed window per run
  int reps = 3;               // interleaved repetitions per config (median wins)
  double mean_interval = 6.0; // mean inter-arrival per client, virtual ticks
  std::size_t payload = 32 * 1024;  // bulk op size; well past the inline-text cap
  std::uint64_t seed = 42;
  std::string profile = "mixed";
  std::uint64_t fault_interval = 25000;  // VFS probe hits between injected faults
  std::string out;
};

enum class Op { kRead, kWrite, kStat, kRetrieve, kPublish, kGetPid };

struct OpMix {
  // Cumulative per-mille thresholds, indexed by Op.
  std::array<int, 6> cum;
};

OpMix profile_mix(const std::string& name) {
  // Weights in per-mille: read, write, stat, retrieve, publish, getpid.
  std::array<int, 6> w{};
  if (name == "bulk") {
    w = {600, 300, 50, 0, 0, 50};
  } else if (name == "meta") {
    w = {0, 0, 400, 250, 100, 250};
  } else {  // mixed (default): bulk-heavy serving with a metadata tail
    w = {450, 200, 150, 80, 40, 80};
  }
  OpMix m{};
  int acc = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    acc += w[i];
    m.cum[i] = acc;
  }
  OSIRIS_ASSERT(acc == 1000);
  return m;
}

/// Latency/throughput accumulator shared by all clients of one run.
struct RunAccum {
  std::uint64_t completed = 0;  // replies with status >= 0
  std::uint64_t errors = 0;     // replies with status < 0 (incl. E_CRASH)
  std::vector<std::uint64_t> latencies_ns;
  std::vector<std::uint64_t> completion_off_ns;  // reply time - phase start
  HostClock::time_point phase_start;
  bool stopped = false;  // deadline hit: no new arrivals, drain only
};

class BenchClient final : public kernel::IClient {
 public:
  BenchClient(os::OsInstance& inst, int id, Rng rng, const OpMix& mix, std::size_t payload,
              RunAccum& acc)
      : inst_(inst), id_(id), rng_(rng), mix_(mix), payload_(payload), acc_(acc) {
    io_.resize(payload_);
    for (std::size_t i = 0; i < io_.size(); ++i) {
      io_[i] = static_cast<std::byte>((i * 131u + static_cast<unsigned>(id)) & 0xff);
    }
    path_ = "/tmp/cli" + std::to_string(id);
    key_ = "bench.cli" + std::to_string(id);
    ep_ = inst_.kern().register_client(this);
  }

  [[nodiscard]] kernel::Endpoint ep() const { return ep_; }
  [[nodiscard]] bool outstanding() const { return outstanding_; }

  // --- setup-phase synchronous request ---------------------------------
  kernel::Message sync_request(kernel::Endpoint dst, kernel::Message m) {
    setup_waiting_ = true;
    inst_.kern().send(ep_, dst, m);
    while (setup_waiting_) {
      if (!inst_.kern().dispatch_pending() && !inst_.clock().advance_to_next()) {
        OSIRIS_PANIC("serving_load: setup request wedged");
      }
    }
    return setup_reply_;
  }

  void setup(std::size_t file_bytes) {
    kernel::Message r =
        sync_request(kernel::kVfsEp, servers::encode_text(servers::VFS_OPEN, path_,
                                                          O_CREAT | O_RDWR));
    OSIRIS_ASSERT(r.sarg(0) >= 0);
    fd_ = r.sarg(0);
    file_bytes_ = file_bytes;
    std::vector<std::byte> init(file_bytes, std::byte{0x5a});
    const kernel::GrantId g = inst_.kern().make_grant(ep_, kernel::kVfsEp, init.data(),
                                                      init.size(), kernel::Access::kRead);
    r = sync_request(kernel::kVfsEp,
                     servers::encode(servers::VFS_WRITE, static_cast<std::uint64_t>(fd_), g,
                                     init.size()));
    inst_.kern().revoke_grant(g);
    OSIRIS_ASSERT(r.sarg(0) == static_cast<std::int64_t>(file_bytes));
    r = sync_request(kernel::kVfsEp,
                     servers::encode(servers::VFS_LSEEK, static_cast<std::uint64_t>(fd_), 0, 0));
    OSIRIS_ASSERT(r.sarg(0) == 0);
    pos_ = 0;
    r = sync_request(kernel::kDsEp, servers::encode_text(servers::DS_PUBLISH, key_, 1));
    OSIRIS_ASSERT(r.sarg(0) >= 0);
  }

  // --- open-loop arrivals ----------------------------------------------
  void on_arrival() {
    const HostClock::time_point stamp = HostClock::now();
    if (outstanding_) {
      backlog_.push_back(stamp);
    } else {
      issue(stamp);
    }
  }

  void on_reply(const kernel::Message& r) override {
    if (setup_waiting_) {
      setup_reply_ = r;
      setup_waiting_ = false;
      return;
    }
    if (grant_ != 0) {
      inst_.kern().revoke_grant(grant_);
      grant_ = 0;
    }
    const std::int64_t status = r.sarg(0);
    const HostClock::time_point now = HostClock::now();
    if (status >= 0) {
      ++acc_.completed;
      if (last_op_ == Op::kRead || last_op_ == Op::kWrite) pos_ += static_cast<std::size_t>(status);
      if (was_lseek_) pos_ = static_cast<std::size_t>(status);
    } else {
      ++acc_.errors;
      if (last_op_ == Op::kRead || last_op_ == Op::kWrite) pos_ = file_bytes_;  // force rewind
    }
    acc_.latencies_ns.push_back(to_ns(now - stamp_));
    acc_.completion_off_ns.push_back(to_ns(now - acc_.phase_start));
    outstanding_ = false;
    if (acc_.stopped) {
      backlog_.clear();
      return;
    }
    if (!backlog_.empty()) {
      const HostClock::time_point next = backlog_.front();
      backlog_.pop_front();
      issue(next);
    }
  }

  void on_notify(const kernel::Message&) override {}

 private:
  void issue(HostClock::time_point stamp) {
    outstanding_ = true;
    stamp_ = stamp;
    was_lseek_ = false;
    kernel::Kernel& kern = inst_.kern();
    const Op op = pick_op();
    last_op_ = op;
    switch (op) {
      case Op::kRead:
      case Op::kWrite: {
        if (pos_ + payload_ > file_bytes_) {
          // Wrap the file cursor; counts as one more (cheap, SM) VFS message.
          was_lseek_ = true;
          kern.send(ep_, kernel::kVfsEp,
                    servers::encode(servers::VFS_LSEEK, static_cast<std::uint64_t>(fd_), 0, 0));
          return;
        }
        const bool rd = op == Op::kRead;
        grant_ = kern.make_grant(ep_, kernel::kVfsEp, io_.data(), payload_,
                                 rd ? kernel::Access::kWrite : kernel::Access::kRead);
        kern.send(ep_, kernel::kVfsEp,
                  servers::encode(rd ? servers::VFS_READ : servers::VFS_WRITE,
                                  static_cast<std::uint64_t>(fd_), grant_, payload_));
        return;
      }
      case Op::kStat:
        kern.send(ep_, kernel::kVfsEp, servers::encode_text(servers::VFS_STAT, path_));
        return;
      case Op::kRetrieve:
        kern.send(ep_, kernel::kDsEp, servers::encode_text(servers::DS_RETRIEVE, key_));
        return;
      case Op::kPublish:
        kern.send(ep_, kernel::kDsEp,
                  servers::encode_text(servers::DS_PUBLISH, key_, ++publish_val_));
        return;
      case Op::kGetPid:
        kern.send(ep_, kernel::kPmEp, servers::encode(servers::PM_GETPID));
        return;
    }
  }

  Op pick_op() {
    const int roll = static_cast<int>(rng_.below(1000));
    for (std::size_t i = 0; i < mix_.cum.size(); ++i) {
      if (roll < mix_.cum[i]) return static_cast<Op>(i);
    }
    return Op::kGetPid;
  }

  os::OsInstance& inst_;
  int id_;
  Rng rng_;
  OpMix mix_;
  std::size_t payload_;
  RunAccum& acc_;
  kernel::Endpoint ep_{};
  std::string path_;
  std::string key_;
  std::vector<std::byte> io_;
  std::int64_t fd_ = -1;
  std::size_t pos_ = 0;
  std::size_t file_bytes_ = 0;
  kernel::GrantId grant_ = 0;
  std::uint64_t publish_val_ = 1;
  bool outstanding_ = false;
  bool was_lseek_ = false;
  Op last_op_ = Op::kGetPid;
  HostClock::time_point stamp_{};
  std::deque<HostClock::time_point> backlog_;
  bool setup_waiting_ = false;
  kernel::Message setup_reply_{};
};

/// VFS's busiest fault site (its request-loop probe): hit once per message.
fi::Site* vfs_entry_site() {
  fi::Registry::instance().disarm();
  fi::Registry::instance().reset_counts();
  {
    os::OsConfig cfg;
    os::OsInstance inst(cfg);
    inst.boot();
    RunAccum acc;
    BenchClient cli(inst, 1, Rng(1), profile_mix("meta"), 64, acc);
    inst.pm().register_boot_proc(1, cli.ep(), "bench");
    inst.vm().register_boot_proc(1);
    inst.vfs().register_boot_proc(1, cli.ep());
    inst.sys_task().register_boot_proc(1);
    for (int i = 0; i < 50; ++i) {
      (void)cli.sync_request(kernel::kVfsEp,
                             servers::encode_text(servers::VFS_STAT, "/tmp"));
    }
  }
  fi::Site* best = nullptr;
  for (fi::Site* s : fi::Registry::instance().sites()) {
    if (std::strcmp(s->tag, "vfs") == 0 && (best == nullptr || s->hits() > best->hits())) best = s;
  }
  OSIRIS_ASSERT(best != nullptr);
  return best;
}

struct RunResult {
  std::string config;
  std::string phase;
  double msgs_per_sec = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t lost = 0;  // clients still blocked when the drain cap hit
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double mean_us = 0.0;
  double spike_width_ms = -1.0;  // faulted runs only
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t rollbacks = 0;
  kernel::KernelStats kstats;
  // Miss-regime rows only: the in-flight-depth axis (depth = clients) and
  // the executor's own accounting — parks/resumes prove the stall was real,
  // in_flight_high_water that the executor actually overlapped it. The
  // disk's 40-tick wait exists in virtual time, so the stall shows up in
  // virtual-time throughput (msgs per kilotick), not host msgs/sec.
  int depth = 0;
  bool fom_enabled = false;
  double msgs_per_ktick = 0.0;
  servers::FomStats fom{};
};

double percentile_us(std::vector<std::uint64_t>& v, double p) {
  if (v.empty()) return 0.0;
  const std::size_t idx =
      std::min(v.size() - 1, static_cast<std::size_t>(p * static_cast<double>(v.size())));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx), v.end());
  return static_cast<double>(v[idx]) / 1000.0;
}

/// Widest contiguous wall-time span (5 ms buckets) whose mean latency
/// exceeds 4x the steady-state mean — the recovery-induced spike.
double spike_width_ms(const RunAccum& acc, double steady_mean_ns) {
  if (acc.latencies_ns.empty() || steady_mean_ns <= 0.0) return 0.0;
  constexpr std::uint64_t kBucketNs = 5'000'000;
  std::uint64_t span_ns = 0;
  for (std::uint64_t off : acc.completion_off_ns) span_ns = std::max(span_ns, off);
  const std::size_t buckets = static_cast<std::size_t>(span_ns / kBucketNs) + 1;
  std::vector<double> sum(buckets, 0.0);
  std::vector<std::uint64_t> cnt(buckets, 0);
  for (std::size_t i = 0; i < acc.latencies_ns.size(); ++i) {
    const std::size_t b = static_cast<std::size_t>(acc.completion_off_ns[i] / kBucketNs);
    sum[b] += static_cast<double>(acc.latencies_ns[i]);
    ++cnt[b];
  }
  const double threshold = 4.0 * steady_mean_ns;
  std::size_t best = 0, cur = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    const bool hot = cnt[b] > 0 && sum[b] / static_cast<double>(cnt[b]) > threshold;
    cur = hot ? cur + 1 : 0;
    best = std::max(best, cur);
  }
  return static_cast<double>(best) * 5.0;
}

RunResult run_serving(const Options& opt, const std::string& config_name,
                      const kernel::FastPath& fp, fi::Site* fault_site, double steady_mean_ns,
                      bool fom = false, bool miss_regime = false) {
  fi::Registry::instance().disarm();
  fi::Registry::instance().reset_counts();

  os::OsConfig cfg;
  cfg.policy = seep::Policy::kEnhanced;
  cfg.max_recoveries = 1u << 30;  // sustain the fault influx indefinitely
  if (fault_site != nullptr) {
    // Disable the crash-rate classifier (see the arming comment below).
    cfg.ladder.crash_window_ticks = 1;
  }
  // Size the disk for every client's working file and keep the whole working
  // set block-cache-resident: a cache miss parks the VFS worker on a 40-tick
  // virtual disk read, and an open-loop generator saturates a disk-bound
  // system in virtual time no matter how fast the host is. The fast path
  // optimizes host work per message, so the serving benchmark measures the
  // cache-hit regime (the setup writes below warm the cache).
  // 8x the payload per file (clamped to the FS max) keeps the rewind lseek —
  // a cheap non-FS message — a small fraction of the bulk op stream. Miss
  // runs stream 64x so every depth's working set dwarfs the shrunken cache.
  const std::size_t file_bytes =
      std::min<std::size_t>((miss_regime ? 64 : 8) * opt.payload, fs::kMaxFileSize);
  const std::size_t file_blocks =
      static_cast<std::size_t>(opt.clients) * file_bytes / fs::kBlockSize;
  cfg.disk_blocks = 2 * file_blocks + 2048;
  cfg.cache_blocks = file_blocks + 256;
  if (miss_regime) {
    // Miss regime: the cache holds an eighth of the working set, so the bulk
    // stream is disk-bound and nearly every read crosses the 40-tick device
    // wait. The fiber path pays that wait serially per request; the FOM
    // executor parks the request and keeps serving, which is the stall this
    // phase exists to show removed.
    cfg.cache_blocks = std::max<std::size_t>(file_blocks / 8, 16);
  }
  cfg.vfs_fom = fom;
  cfg.fastpath = fp;
  os::OsInstance inst(cfg);
  inst.boot();

  RunAccum acc;
  OpMix mix = profile_mix(opt.profile);
  Rng root(opt.seed);
  std::vector<std::unique_ptr<BenchClient>> clients;
  clients.reserve(static_cast<std::size_t>(opt.clients));
  for (int i = 0; i < opt.clients; ++i) {
    clients.push_back(
        std::make_unique<BenchClient>(inst, i + 1, root.fork(), mix, opt.payload, acc));
    BenchClient& c = *clients.back();
    inst.pm().register_boot_proc(i + 1, c.ep(), "bench");
    inst.vm().register_boot_proc(i + 1);
    inst.vfs().register_boot_proc(i + 1, c.ep());
    inst.sys_task().register_boot_proc(i + 1);
    c.setup(file_bytes);
  }

  if (fault_site != nullptr) {
    // The faulted phase measures steady per-crash recovery cost (restart +
    // rollback + error virtualization), not the escalation ladder: at host
    // speed the open loop packs virtual time so densely that the default
    // crash-rate classifier would park VFS in quarantine, and the run would
    // degenerate into measuring E_CRASH reply throughput.
    fi::Registry::instance().arm_periodic_window_crash(fault_site, opt.fault_interval);
  }

  // Self-rescheduling Poisson arrival chain per client. Inter-arrival gaps
  // are exponential in virtual ticks; clamping to >= 1 keeps the clock
  // strictly advancing. Multiple clients landing on the same tick is what
  // feeds multi-message dispatch rounds (and batches, when enabled).
  Rng arrivals(opt.seed ^ 0x9e3779b9u);
  std::function<void(BenchClient*)> chain = [&](BenchClient* c) {
    if (acc.stopped) return;
    c->on_arrival();
    const double u = arrivals.uniform();
    const Tick dt = std::max<Tick>(
        1, static_cast<Tick>(-std::log(1.0 - u) * opt.mean_interval + 0.5));
    inst.clock().call_after(dt, [&chain, c] { chain(c); });
  };
  for (auto& c : clients) {
    const Tick dt = 1 + static_cast<Tick>(arrivals.below(
                            static_cast<std::uint64_t>(opt.mean_interval) + 1));
    inst.clock().call_after(dt, [&chain, c = c.get()] { chain(c); });
  }

  kernel::Kernel& kern = inst.kern();
  const Tick virt_start = inst.clock().now();
  acc.phase_start = HostClock::now();
  const auto deadline =
      acc.phase_start + std::chrono::duration_cast<HostClock::duration>(
                            std::chrono::duration<double>(opt.seconds));
  while (HostClock::now() < deadline) {
    if (!kern.dispatch_pending() && !inst.clock().advance_to_next()) break;
  }
  const double elapsed = to_sec(HostClock::now() - acc.phase_start);
  const std::uint64_t at_deadline = acc.completed + acc.errors;
  const Tick virt_elapsed = inst.clock().now() - virt_start;
  acc.stopped = true;

  // Drain in-flight requests (bounded: a fault resolved as no-reply can
  // orphan a client; those count as lost, not as latency samples).
  const auto drain_cap = HostClock::now() + std::chrono::seconds(2);
  auto any_outstanding = [&clients] {
    for (const auto& c : clients) {
      if (c->outstanding()) return true;
    }
    return false;
  };
  while (any_outstanding() && HostClock::now() < drain_cap) {
    if (!kern.dispatch_pending() && !inst.clock().advance_to_next()) break;
  }
  fi::Registry::instance().disarm();

  RunResult r;
  r.config = config_name;
  r.phase = fault_site != nullptr ? "faulted" : (miss_regime ? "miss" : "steady");
  if (miss_regime) {
    r.depth = opt.clients;
    r.fom_enabled = fom;
    r.fom = *inst.vfs().fom_stats();
    r.msgs_per_ktick = virt_elapsed > 0
                           ? static_cast<double>(at_deadline) * 1000.0 /
                                 static_cast<double>(virt_elapsed)
                           : 0.0;
  }
  r.completed = acc.completed;
  r.errors = acc.errors;
  for (const auto& c : clients) {
    if (c->outstanding()) ++r.lost;
  }
  r.msgs_per_sec = elapsed > 0 ? static_cast<double>(at_deadline) / elapsed : 0.0;
  double sum = 0.0;
  for (std::uint64_t ns : acc.latencies_ns) sum += static_cast<double>(ns);
  r.mean_us = acc.latencies_ns.empty()
                  ? 0.0
                  : sum / static_cast<double>(acc.latencies_ns.size()) / 1000.0;
  if (fault_site != nullptr) r.spike_width_ms = spike_width_ms(acc, steady_mean_ns);
  std::vector<std::uint64_t> lat = acc.latencies_ns;
  r.p50_us = percentile_us(lat, 0.50);
  r.p99_us = percentile_us(lat, 0.99);
  r.p999_us = percentile_us(lat, 0.999);
  r.kstats = kern.stats();
  r.crashes = kern.stats().crashes;
  r.restarts = inst.engine().stats().restarts;
  r.rollbacks = inst.engine().stats().rollbacks;
  return r;
}

void json_run(std::FILE* f, const RunResult& r, bool last) {
  const kernel::KernelStats& k = r.kstats;
  std::fprintf(f,
               "    {\"config\": \"%s\", \"phase\": \"%s\", \"msgs_per_sec\": %.1f,\n"
               "     \"completed\": %llu, \"errors\": %llu, \"lost\": %llu,\n"
               "     \"p50_us\": %.2f, \"p99_us\": %.2f, \"p999_us\": %.2f, \"mean_us\": %.2f,\n",
               r.config.c_str(), r.phase.c_str(), r.msgs_per_sec,
               static_cast<unsigned long long>(r.completed),
               static_cast<unsigned long long>(r.errors),
               static_cast<unsigned long long>(r.lost), r.p50_us, r.p99_us, r.p999_us, r.mean_us);
  if (r.spike_width_ms >= 0.0) {
    std::fprintf(f, "     \"spike_width_ms\": %.1f, \"crashes\": %llu, \"restarts\": %llu, "
                    "\"rollbacks\": %llu,\n",
                 r.spike_width_ms, static_cast<unsigned long long>(r.crashes),
                 static_cast<unsigned long long>(r.restarts),
                 static_cast<unsigned long long>(r.rollbacks));
  }
  if (r.depth > 0) {
    std::fprintf(f,
                 "     \"depth\": %d, \"fom\": %s, \"msgs_per_ktick\": %.2f,\n"
                 "     \"fom_stats\": {\"admitted\": %llu, "
                 "\"parks\": %llu, \"resumes\": %llu, \"aborts\": %llu, "
                 "\"sync_fallbacks\": %llu, \"in_flight_high_water\": %llu, "
                 "\"wait_ticks_total\": %llu},\n",
                 r.depth, r.fom_enabled ? "true" : "false", r.msgs_per_ktick,
                 static_cast<unsigned long long>(r.fom.admitted),
                 static_cast<unsigned long long>(r.fom.parks),
                 static_cast<unsigned long long>(r.fom.resumes),
                 static_cast<unsigned long long>(r.fom.aborts),
                 static_cast<unsigned long long>(r.fom.sync_fallbacks),
                 static_cast<unsigned long long>(r.fom.in_flight_high_water),
                 static_cast<unsigned long long>(r.fom.wait_ticks_total));
  }
  std::fprintf(f,
               "     \"kernel\": {\"messages_queued\": %llu, \"queue_high_water\": %llu, "
               "\"arena_spills\": %llu,\n"
               "                \"batches\": %llu, \"batched_messages\": %llu, "
               "\"batch_hist\": [",
               static_cast<unsigned long long>(k.messages_queued),
               static_cast<unsigned long long>(k.queue_high_water),
               static_cast<unsigned long long>(k.arena_spills),
               static_cast<unsigned long long>(k.batches),
               static_cast<unsigned long long>(k.batched_messages));
  for (std::size_t i = 0; i < kernel::kBatchHistBuckets; ++i) {
    std::fprintf(f, "%s%llu", i == 0 ? "" : ", ",
                 static_cast<unsigned long long>(k.batch_hist[i]));
  }
  std::fprintf(f,
               "],\n"
               "                \"safecopy_bytes\": %llu, \"grant_bypass_bytes\": %llu, "
               "\"grant_spans\": %llu}}%s\n",
               static_cast<unsigned long long>(k.safecopy_bytes),
               static_cast<unsigned long long>(k.grant_bypass_bytes),
               static_cast<unsigned long long>(k.grant_spans), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      OSIRIS_ASSERT(i + 1 < argc);
      return argv[++i];
    };
    if (a == "--clients") {
      opt.clients = std::atoi(next());
    } else if (a == "--seconds") {
      opt.seconds = std::atof(next());
    } else if (a == "--reps") {
      opt.reps = std::atoi(next());
    } else if (a == "--interval") {
      opt.mean_interval = std::atof(next());
    } else if (a == "--payload") {
      opt.payload = static_cast<std::size_t>(std::atoll(next()));
    } else if (a == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (a == "--profile") {
      opt.profile = next();
    } else if (a == "--fault-interval") {
      opt.fault_interval = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (a == "--out") {
      opt.out = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return 2;
    }
  }
  const int max_clients = static_cast<int>(servers::kMaxProcs);
  if (opt.clients > max_clients) {
    std::fprintf(stderr, "serving_load: clamping --clients %d to process-table capacity %d\n",
                 opt.clients, max_clients);
    opt.clients = max_clients;
  }
  OSIRIS_ASSERT(opt.clients >= 1);
  OSIRIS_ASSERT(opt.payload >= 1);

  fi::Site* vfs_site = vfs_entry_site();

  struct Config {
    const char* name;
    kernel::FastPath fp;
  };
  std::vector<Config> configs;
  configs.push_back({"baseline", kernel::FastPath{}});
  {
    kernel::FastPath f;
    f.arena_queue = true;
    configs.push_back({"arena", f});
  }
  {
    kernel::FastPath f;
    f.batching = true;
    configs.push_back({"batching", f});
  }
  {
    kernel::FastPath f;
    f.zero_copy = true;
    configs.push_back({"zero_copy", f});
  }
  configs.push_back({"fastpath", kernel::FastPath::all_on()});

  std::printf("serving_load: %d clients, %.1fs/run, profile=%s, payload=%zu, seed=%llu\n",
              opt.clients, opt.seconds, opt.profile.c_str(), opt.payload,
              static_cast<unsigned long long>(opt.seed));
  std::printf("%-10s %-8s %12s %10s %10s %10s %10s\n", "config", "phase", "msgs/sec", "p50us",
              "p99us", "p999us", "spike ms");

  // Untimed warm-up: the first run otherwise pays CPU-frequency ramp, page
  // faults, and cold allocator state, skewing whichever config goes first.
  {
    Options warm = opt;
    warm.seconds = std::min(0.3, opt.seconds);
    (void)run_serving(warm, "warmup", kernel::FastPath{}, nullptr, 0.0);
  }

  // Interleave repetitions across configs (rep-major order) so slow drift —
  // thermal throttling, noisy neighbours — spreads over every column instead
  // of biasing whichever config runs last; the per-config median rep wins.
  std::vector<std::vector<RunResult>> steady_reps(configs.size());
  for (int rep = 0; rep < opt.reps; ++rep) {
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      steady_reps[ci].push_back(run_serving(opt, configs[ci].name, configs[ci].fp, nullptr, 0.0));
    }
  }
  auto median_rep = [](std::vector<RunResult>& reps) -> RunResult {
    std::sort(reps.begin(), reps.end(),
              [](const RunResult& a, const RunResult& b) { return a.msgs_per_sec < b.msgs_per_sec; });
    return reps[reps.size() / 2];
  };

  std::vector<RunResult> results;
  double base_steady = 0.0, fast_steady = 0.0;
  double base_mean_ns = 0.0, fast_mean_ns = 0.0;
  double base_spike = 0.0, fast_spike = 0.0;
  for (std::size_t ci = 0; ci < configs.size(); ++ci) {
    RunResult steady = median_rep(steady_reps[ci]);
    std::printf("%-10s %-8s %12.1f %10.2f %10.2f %10.2f %10s\n", steady.config.c_str(),
                steady.phase.c_str(), steady.msgs_per_sec, steady.p50_us, steady.p99_us,
                steady.p999_us, "-");
    std::fflush(stdout);
    if (std::strcmp(configs[ci].name, "baseline") == 0) {
      base_steady = steady.msgs_per_sec;
      base_mean_ns = steady.mean_us * 1000.0;
    }
    if (std::strcmp(configs[ci].name, "fastpath") == 0) {
      fast_steady = steady.msgs_per_sec;
      fast_mean_ns = steady.mean_us * 1000.0;
    }
    results.push_back(steady);
  }
  // Faulted phase for the before/after endpoints of the sweep, after the
  // steady sweep so fault influx never warps a steady column.
  for (const Config& c : configs) {
    const bool is_base = std::strcmp(c.name, "baseline") == 0;
    const bool is_fast = std::strcmp(c.name, "fastpath") == 0;
    if (!is_base && !is_fast) continue;
    RunResult faulted =
        run_serving(opt, c.name, c.fp, vfs_site, is_base ? base_mean_ns : fast_mean_ns);
    std::printf("%-10s %-8s %12.1f %10.2f %10.2f %10.2f %10.1f\n", faulted.config.c_str(),
                faulted.phase.c_str(), faulted.msgs_per_sec, faulted.p50_us, faulted.p99_us,
                faulted.p999_us, faulted.spike_width_ms);
    std::fflush(stdout);
    if (is_base) base_spike = faulted.spike_width_ms;
    if (is_fast) fast_spike = faulted.spike_width_ms;
    results.push_back(faulted);
  }
  const double speedup = base_steady > 0 ? fast_steady / base_steady : 0.0;
  std::printf("\nsteady-state speedup (fastpath / baseline): %.2fx\n", speedup);

  // Miss-regime sweep over in-flight depth (DESIGN.md §16): fiber path vs
  // FOM executor, both on the full fast path, with the cache shrunk to an
  // eighth of the working set. Depth = concurrent clients: at depth 1 the
  // two paths tie (nothing to overlap), and the executor's advantage grows
  // with depth because parked requests stop serializing the disk waits.
  std::printf("\n%-14s %-6s %6s %12s %12s %10s %9s %8s\n", "config", "phase", "depth",
              "msgs/ktick", "msgs/sec", "p50us", "inflight", "parks");
  std::vector<int> depths;
  for (const int d : {1, opt.clients / 4, opt.clients}) {
    if (d >= 1 && (depths.empty() || d > depths.back())) depths.push_back(d);
  }
  double fiber_miss = 0.0, fom_miss = 0.0;  // msgs/ktick at max depth
  for (const int depth : depths) {
    Options miss_opt = opt;
    miss_opt.clients = depth;
    // Block-sized ops: the serving-miss workload is random single-block
    // reads over a cold set. Bulk multi-block ops would re-run the handler
    // once per missing block under the executor (the documented re-execution
    // amplification, EXPERIMENTS.md), which measures re-run cost, not the
    // stall; one block per op isolates the overlap the axis is after.
    miss_opt.payload = fs::kBlockSize;
    for (const bool fom : {false, true}) {
      std::vector<RunResult> reps;
      for (int rep = 0; rep < opt.reps; ++rep) {
        reps.push_back(run_serving(miss_opt, fom ? "fastpath_fom" : "fastpath",
                                   kernel::FastPath::all_on(), nullptr, 0.0, fom,
                                   /*miss_regime=*/true));
      }
      RunResult miss = median_rep(reps);
      std::printf("%-14s %-6s %6d %12.2f %12.1f %10.2f %9llu %8llu\n", miss.config.c_str(),
                  miss.phase.c_str(), miss.depth, miss.msgs_per_ktick, miss.msgs_per_sec,
                  miss.p50_us, static_cast<unsigned long long>(miss.fom.in_flight_high_water),
                  static_cast<unsigned long long>(miss.fom.parks));
      std::fflush(stdout);
      if (depth == depths.back()) (fom ? fom_miss : fiber_miss) = miss.msgs_per_ktick;
      results.push_back(miss);
    }
  }
  const double fom_speedup = fiber_miss > 0 ? fom_miss / fiber_miss : 0.0;
  std::printf("\nmiss-regime virtual-time speedup at depth %d (fom / fiber): %.2fx\n",
              depths.back(), fom_speedup);

  std::FILE* f = stdout;
  if (!opt.out.empty()) {
    f = std::fopen(opt.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "serving_load: cannot open %s\n", opt.out.c_str());
      return 1;
    }
  } else {
    std::printf("\n");
  }
  std::fprintf(f,
               "{\n  \"bench\": \"serving_load\",\n  \"clients\": %d,\n  \"seconds\": %.2f,\n"
               "  \"profile\": \"%s\",\n  \"payload_bytes\": %zu,\n  \"seed\": %llu,\n"
               "  \"mean_interval_ticks\": %.1f,\n  \"fault_interval\": %llu,\n"
               "  \"speedup_steady\": %.3f,\n"
               "  \"speedup_miss_fom\": %.3f,\n"
               "  \"spike_width_ms\": {\"baseline\": %.1f, \"fastpath\": %.1f},\n"
               "  \"runs\": [\n",
               opt.clients, opt.seconds, opt.profile.c_str(), opt.payload,
               static_cast<unsigned long long>(opt.seed), opt.mean_interval,
               static_cast<unsigned long long>(opt.fault_interval), speedup, fom_speedup,
               base_spike, fast_spike);
  for (std::size_t i = 0; i < results.size(); ++i) {
    json_run(f, results[i], i + 1 == results.size());
  }
  std::fprintf(f, "  ]\n}\n");
  if (f != stdout) std::fclose(f);
  return 0;
}
