// Regenerates Table I: "Percentage of time spent inside the recovery window
// for each server (mean weighted by time spent running server)".
//
// Runs the 89-program prototype test suite under the pessimistic and the
// enhanced recovery policies and reports per-server recovery coverage: the
// fraction of executed basic blocks (probes) that fell inside an open
// recovery window.
//
// Paper reference values: PM 54.9/61.7, VFS 72.3/72.3, VM 64.6/64.6,
// DS 47.1/92.8, RS 49.4/50.5; weighted mean 57.7/68.4.
#include <cstdio>

#include "campaign_cli.hpp"
#include "support/table_printer.hpp"
#include "support/worker_pool.hpp"
#include "workload/coverage.hpp"

using namespace osiris;

int main(int argc, char** argv) {
  std::printf("Table I — recovery coverage per server (prototype test suite)\n\n");

  // One isolated suite run per policy; with --jobs>1 they run concurrently
  // (each on its own worker thread/simulator).
  const seep::Policy policies[] = {seep::Policy::kPessimistic, seep::Policy::kEnhanced};
  workload::CoverageReport reports[2];
  support::WorkerPool::run_indexed(2, bench::parse_jobs(argc, argv), [&](std::size_t i) {
    reports[i] = workload::measure_coverage(policies[i]);
  });
  const auto& pess = reports[0];
  const auto& enh = reports[1];

  TablePrinter table({"Server", "Pessimistic", "Enhanced", "Probe hits"});
  double pess_mean = pess.weighted_mean;
  double enh_mean = enh.weighted_mean;
  for (std::size_t i = 0; i < pess.servers.size(); ++i) {
    table.add_row({pess.servers[i].server, TablePrinter::pct(pess.servers[i].coverage),
                   TablePrinter::pct(enh.servers[i].coverage),
                   std::to_string(enh.servers[i].total_hits)});
  }
  table.add_separator();
  table.add_row({"weighted mean", TablePrinter::pct(pess_mean), TablePrinter::pct(enh_mean), ""});
  table.print();

  std::printf("\npaper: weighted mean 57.7%% (pessimistic) / 68.4%% (enhanced);\n"
              "       DS lowest->highest across policies, VFS/VM policy-independent\n");
  std::printf("suite: %d passed, %d failed (must be 89/0)\n", enh.suite_passed, enh.suite_failed);
  return enh.suite_failed == 0 ? 0 : 1;
}
