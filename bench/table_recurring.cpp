// Survivability under *persistent* (recurring) faults — the escalation
// ladder's stress test.
//
// Unlike Table II's one-shot faults, each injection here models a
// deterministic bug: the fault re-fires after every recovery, so flat
// restart policies crash-loop. The escalation ladder (transient retry ->
// stateless restart with backoff -> quarantine) is what turns those loops
// into degraded-but-alive outcomes. Buckets per run:
//   Recovered — suite finished clean, no quarantine needed;
//   Degraded  — machine survived the suite, but a component ended up
//               quarantined (or residual suite failures remain);
//   Shutdown  — consistent controlled shutdown;
//   Wedged    — crash or hang: the bucket the ladder exists to empty.
//
// Environment:
//   OSIRIS_SAMPLE           keep only every Nth injection (default 1 = all)
//   OSIRIS_JOBS / --jobs=N  worker threads (default 1; 0 = all cores)
#include <cstdio>
#include <cstdlib>

#include "campaign_cli.hpp"
#include "support/table_printer.hpp"
#include "workload/campaign.hpp"

using namespace osiris;
using namespace osiris::workload;

int main(int argc, char** argv) {
  CampaignOptions opts;
  opts.jobs = bench::parse_jobs(argc, argv);
  const int sample =
      std::getenv("OSIRIS_SAMPLE") ? std::atoi(std::getenv("OSIRIS_SAMPLE")) : 1;

  std::vector<Injection> plan = plan_recurring();
  if (sample > 1) {
    std::vector<Injection> sampled;
    for (std::size_t i = 0; i < plan.size(); i += sample) sampled.push_back(plan[i]);
    plan = std::move(sampled);
  }
  std::printf("Recurring-fault survivability (persistent bugs, escalation ladder)\n");
  std::printf("(%zu injections per policy; the same plan applied to every policy)\n\n",
              plan.size());
  std::fprintf(stderr, "[table_recurring] %u worker(s)\n", campaign_jobs(opts.jobs));

  TablePrinter table({"Recovery mode", "Recovered", "Degraded", "Shutdown", "Wedged"});
  for (auto policy : {seep::Policy::kStateless, seep::Policy::kNaive,
                      seep::Policy::kPessimistic, seep::Policy::kEnhanced}) {
    const RecurringTotals t = run_recurring_campaign(policy, plan, opts);
    table.add_row({seep::policy_name(policy), TablePrinter::pct(t.frac(t.recovered)),
                   TablePrinter::pct(t.frac(t.degraded)),
                   TablePrinter::pct(t.frac(t.shutdown)),
                   TablePrinter::pct(t.frac(t.wedged))});
    std::fflush(stdout);
  }
  table.print();
  std::printf(
      "\nshape: every policy should have a near-empty Wedged column — the\n"
      "ladder quarantines crash-looping components instead of letting them\n"
      "wedge the machine; windowed policies shut down consistently more\n"
      "often, stateless survives degraded more often\n");
  return 0;
}
