// Regenerates the SVI-A Reliable Computing Base accounting: the paper's
// prototype has 237,270 LOC of which the RCB is 29,732 LOC (12.5%).
//
// The RCB comprises exactly the five mechanisms the paper lists:
//   1. checkpointing            -> src/ckpt
//   2. restartability           -> src/recovery
//   3. recovery window mgmt     -> src/seep
//   4. initialization           -> (init_state methods, counted with servers)
//   5. message passing substrate -> src/kernel (+ the SYS task)
//
// Counts are physical source lines (non-blank) under src/, per subsystem.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "campaign_cli.hpp"
#include "support/table_printer.hpp"
#include "support/worker_pool.hpp"

#ifndef OSIRIS_SOURCE_DIR
#define OSIRIS_SOURCE_DIR "."
#endif

namespace {

std::size_t count_lines(const std::filesystem::path& file) {
  std::ifstream in(file);
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") != std::string::npos) ++lines;
  }
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fsys = std::filesystem;
  const fsys::path src = fsys::path(OSIRIS_SOURCE_DIR) / "src";
  if (!fsys::exists(src)) {
    std::fprintf(stderr, "source tree not found at %s\n", src.c_str());
    return 1;
  }

  const std::map<std::string, bool> rcb_subsystems = {
      {"support", false}, {"kernel", true},   {"ckpt", true},   {"seep", true},
      {"cothread", false}, {"fs", false},     {"recovery", true}, {"fi", false},
      {"servers", false}, {"os", false},      {"workload", false}, {"core", false},
  };

  // Gather the file list first, then shard the line counting across the
  // worker pool; the merge is keyed by file index, so the per-subsystem sums
  // are independent of worker scheduling.
  std::vector<std::pair<std::string, fsys::path>> files;
  for (const auto& entry : fsys::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext != ".cpp" && ext != ".hpp") continue;
    files.emplace_back(entry.path().lexically_relative(src).begin()->string(), entry.path());
  }
  std::vector<std::size_t> counts(files.size(), 0);
  osiris::support::WorkerPool::run_indexed(
      files.size(), osiris::bench::parse_jobs(argc, argv),
      [&](std::size_t i) { counts[i] = count_lines(files[i].second); });
  std::map<std::string, std::size_t> loc;
  for (std::size_t i = 0; i < files.size(); ++i) loc[files[i].first] += counts[i];

  std::size_t total = 0, rcb = 0;
  osiris::TablePrinter table({"Subsystem", "LOC", "RCB"});
  for (const auto& [name, lines] : loc) {
    const auto it = rcb_subsystems.find(name);
    const bool in_rcb = it != rcb_subsystems.end() && it->second;
    total += lines;
    if (in_rcb) rcb += lines;
    table.add_row({name, std::to_string(lines), in_rcb ? "yes" : "no"});
  }
  table.add_separator();
  table.add_row({"total", std::to_string(total), std::to_string(rcb) + " in RCB"});
  table.print();

  std::printf("\nRCB fraction: %.1f%% of the code base (paper: 12.5%%; RCB = checkpointing,\n"
              "restartability, window management, initialization, message substrate)\n",
              total > 0 ? 100.0 * static_cast<double>(rcb) / static_cast<double>(total) : 0.0);
  return 0;
}
