// Regenerates Table III: "Survivability under random fault injection of
// full EDFI faults" — the realistic software-fault mix (silent value
// corruption, off-by-one, branch flips, hangs, delayed crashes, plus
// null-derefs), which deliberately violates the fail-stop assumption.
//
// Paper reference: stateless 47.8/10.5/0.0/41.7, naive 48.5/11.9/0.0/39.6,
// pessimistic 47.3/10.5/38.2/4.0, enhanced 50.4/12.0/32.9/4.8.
//
// Environment:
//   OSIRIS_INJ_PER_SITE  injections per site (default 2)
//   OSIRIS_SEED          plan seed (default 316)
//   OSIRIS_SAMPLE        keep only every Nth injection (default 1)
//   OSIRIS_JOBS / --jobs=N  worker threads (default 1; 0 = all cores)
#include <cstdio>
#include <cstdlib>

#include "campaign_cli.hpp"
#include "support/table_printer.hpp"
#include "workload/campaign.hpp"

using namespace osiris;
using namespace osiris::workload;

int main(int argc, char** argv) {
  CampaignOptions opts;
  opts.jobs = bench::parse_jobs(argc, argv);
  const int per_site = std::getenv("OSIRIS_INJ_PER_SITE")
                           ? std::atoi(std::getenv("OSIRIS_INJ_PER_SITE"))
                           : 2;
  const std::uint64_t seed =
      std::getenv("OSIRIS_SEED") ? std::strtoull(std::getenv("OSIRIS_SEED"), nullptr, 10) : 316;
  const int sample =
      std::getenv("OSIRIS_SAMPLE") ? std::atoi(std::getenv("OSIRIS_SAMPLE")) : 1;

  std::vector<Injection> plan = plan_edfi(seed, per_site);
  if (sample > 1) {
    std::vector<Injection> sampled;
    for (std::size_t i = 0; i < plan.size(); i += sample) sampled.push_back(plan[i]);
    plan = std::move(sampled);
  }
  std::printf("Table III — survivability under full EDFI fault injection\n");
  std::printf("(%zu injections per policy, mixed fault types, seed %llu)\n\n", plan.size(),
              static_cast<unsigned long long>(seed));
  std::fprintf(stderr, "[table3] %u worker(s)\n", campaign_jobs(opts.jobs));

  TablePrinter table({"Recovery mode", "Pass", "Fail", "Shutdown", "Crash"});
  for (auto policy : {seep::Policy::kStateless, seep::Policy::kNaive,
                      seep::Policy::kPessimistic, seep::Policy::kEnhanced}) {
    const CampaignTotals t = run_campaign(policy, plan, opts);
    table.add_row({seep::policy_name(policy), TablePrinter::pct(t.frac(t.pass)),
                   TablePrinter::pct(t.frac(t.fail)), TablePrinter::pct(t.frac(t.shutdown)),
                   TablePrinter::pct(t.frac(t.crash))});
    std::fflush(stdout);
  }
  table.print();
  std::printf(
      "\npaper: stateless 47.8/10.5/0.0/41.7  naive 48.5/11.9/0.0/39.6\n"
      "       pessimistic 47.3/10.5/38.2/4.0  enhanced 50.4/12.0/32.9/4.8\n"
      "shape: silent faults raise completion for everyone (many never become\n"
      "fatal); enhanced still leads; windowed crash shares rise vs Table II\n"
      "because the fail-stop assumption no longer holds\n");
  return 0;
}
