// Shared CLI handling for the campaign-driven bench binaries.
//
// Every campaign binary accepts `--jobs=N` (or the OSIRIS_JOBS environment
// variable; the flag wins) to shard its injection plan across N worker
// threads. N=1 is the serial reference run, N=0 resolves to
// hardware_concurrency. Output is byte-identical across all N because
// results are merged in plan order.
#pragma once

#include <cstdlib>
#include <cstring>

namespace osiris::bench {

inline unsigned parse_jobs(int argc, char** argv, unsigned def = 1) {
  unsigned jobs = def;
  if (const char* env = std::getenv("OSIRIS_JOBS")) {
    jobs = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<unsigned>(std::strtoul(argv[i] + 7, nullptr, 10));
    } else if (std::strcmp(argv[i], "-j") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  return jobs;
}

}  // namespace osiris::bench
