// Ablation (ours, motivated by the paper's SVII "composable recovery
// policies"): how the recovery-window policy axis trades recoverable
// surface for reconciliation aggressiveness. Reports per-server coverage
// under pessimistic / enhanced / extended, plus a small fail-stop
// survivability comparison between enhanced and extended.
//
// Environment: OSIRIS_SAMPLE thins the survivability plan (default 3);
// OSIRIS_JOBS / --jobs=N shards the campaign (default 1; 0 = all cores).
#include <cstdio>
#include <cstdlib>

#include "campaign_cli.hpp"
#include "support/table_printer.hpp"
#include "support/worker_pool.hpp"
#include "workload/campaign.hpp"
#include "workload/coverage.hpp"

using namespace osiris;
using namespace osiris::workload;

int main(int argc, char** argv) {
  CampaignOptions opts;
  opts.jobs = bench::parse_jobs(argc, argv);
  std::printf("Ablation — recovery-window policy axis\n\n");

  // The three coverage suites are independent simulators: shard them too.
  const seep::Policy cov_policies[] = {seep::Policy::kPessimistic, seep::Policy::kEnhanced,
                                       seep::Policy::kExtended};
  CoverageReport cov_reports[3];
  support::WorkerPool::run_indexed(3, opts.jobs, [&](std::size_t i) {
    cov_reports[i] = measure_coverage(cov_policies[i]);
  });
  const auto& pess = cov_reports[0];
  const auto& enh = cov_reports[1];
  const auto& ext = cov_reports[2];

  TablePrinter cov({"Server", "Pessimistic", "Enhanced", "Extended (SVII)"});
  for (std::size_t i = 0; i < pess.servers.size(); ++i) {
    cov.add_row({pess.servers[i].server, TablePrinter::pct(pess.servers[i].coverage),
                 TablePrinter::pct(enh.servers[i].coverage),
                 TablePrinter::pct(ext.servers[i].coverage)});
  }
  cov.add_separator();
  cov.add_row({"weighted mean", TablePrinter::pct(pess.weighted_mean),
               TablePrinter::pct(enh.weighted_mean), TablePrinter::pct(ext.weighted_mean)});
  cov.print();

  const int sample =
      std::getenv("OSIRIS_SAMPLE") ? std::atoi(std::getenv("OSIRIS_SAMPLE")) : 3;
  std::vector<Injection> plan;
  {
    const auto full = plan_failstop(3);
    for (std::size_t i = 0; i < full.size(); i += static_cast<std::size_t>(sample)) {
      plan.push_back(full[i]);
    }
  }
  std::printf("\nfail-stop survivability on a thinned plan (%zu injections):\n\n", plan.size());
  TablePrinter surv({"Policy", "Pass", "Fail", "Shutdown", "Crash"});
  for (auto policy : {seep::Policy::kEnhanced, seep::Policy::kExtended}) {
    const CampaignTotals t = run_campaign(policy, plan, opts);
    surv.add_row({seep::policy_name(policy), TablePrinter::pct(t.frac(t.pass)),
                  TablePrinter::pct(t.frac(t.fail)), TablePrinter::pct(t.frac(t.shutdown)),
                  TablePrinter::pct(t.frac(t.crash))});
  }
  surv.print();
  std::printf("\nreading: the extended policy widens the recovery surface (fewer\n"
              "shutdowns) at the price of a harsher reconciliation — the requester\n"
              "is killed when a tainted window is recovered.\n");
  return 0;
}
