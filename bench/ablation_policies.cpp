// Ablation (ours, motivated by the paper's SVII "composable recovery
// policies"): how the recovery-window policy axis trades recoverable
// surface for reconciliation aggressiveness. Reports per-server coverage
// under pessimistic / enhanced / extended, plus a small fail-stop
// survivability comparison between enhanced and extended.
//
// Environment: OSIRIS_SAMPLE thins the survivability plan (default 3).
#include <cstdio>
#include <cstdlib>

#include "support/table_printer.hpp"
#include "workload/campaign.hpp"
#include "workload/coverage.hpp"

using namespace osiris;
using namespace osiris::workload;

int main() {
  std::printf("Ablation — recovery-window policy axis\n\n");

  const auto pess = measure_coverage(seep::Policy::kPessimistic);
  const auto enh = measure_coverage(seep::Policy::kEnhanced);
  const auto ext = measure_coverage(seep::Policy::kExtended);

  TablePrinter cov({"Server", "Pessimistic", "Enhanced", "Extended (SVII)"});
  for (std::size_t i = 0; i < pess.servers.size(); ++i) {
    cov.add_row({pess.servers[i].server, TablePrinter::pct(pess.servers[i].coverage),
                 TablePrinter::pct(enh.servers[i].coverage),
                 TablePrinter::pct(ext.servers[i].coverage)});
  }
  cov.add_separator();
  cov.add_row({"weighted mean", TablePrinter::pct(pess.weighted_mean),
               TablePrinter::pct(enh.weighted_mean), TablePrinter::pct(ext.weighted_mean)});
  cov.print();

  const int sample =
      std::getenv("OSIRIS_SAMPLE") ? std::atoi(std::getenv("OSIRIS_SAMPLE")) : 3;
  std::vector<Injection> plan;
  {
    const auto full = plan_failstop(3);
    for (std::size_t i = 0; i < full.size(); i += static_cast<std::size_t>(sample)) {
      plan.push_back(full[i]);
    }
  }
  std::printf("\nfail-stop survivability on a thinned plan (%zu injections):\n\n", plan.size());
  TablePrinter surv({"Policy", "Pass", "Fail", "Shutdown", "Crash"});
  for (auto policy : {seep::Policy::kEnhanced, seep::Policy::kExtended}) {
    const CampaignTotals t = run_campaign(policy, plan);
    surv.add_row({seep::policy_name(policy), TablePrinter::pct(t.frac(t.pass)),
                  TablePrinter::pct(t.frac(t.fail)), TablePrinter::pct(t.frac(t.shutdown)),
                  TablePrinter::pct(t.frac(t.crash))});
  }
  surv.print();
  std::printf("\nreading: the extended policy widens the recovery surface (fewer\n"
              "shutdowns) at the price of a harsher reconciliation — the requester\n"
              "is killed when a tainted window is recovered.\n");
  return 0;
}
