// Regenerates Table VI: "Per-component memory overhead" — base memory usage
// per server, the pre-allocated spare clone, and the maximum undo-log size
// observed while running the unixbench workloads.
//
// Paper reference (kB): PM 628/944/1, VFS 1252/1600/13, VM 4532/18032/24576,
// DS 248/488/1, RS 1696/5004/1; total overhead 50660 kB, dominated by VM's
// clone pre-allocation and undo log. Absolute sizes differ (our servers are
// simulator-scale), but the shape — VM dominating both overhead columns —
// reproduces.
#include <cstdio>

#include "os/instance.hpp"
#include "support/table_printer.hpp"
#include "workload/unixbench.hpp"

using namespace osiris;
using namespace osiris::workload;

int main() {
  os::OsConfig cfg;  // enhanced policy, window-gated instrumentation
  os::OsInstance inst(cfg);
  register_ub_programs(inst.programs());
  inst.boot();

  // Drive every unixbench workload once inside one machine so each server's
  // undo-log high-water mark reflects its busiest request.
  const auto outcome = inst.run([](os::ISys& sys) {
    for (const UbWorkload& w : ub_workloads()) {
      w.body(sys, std::max<std::uint64_t>(1, w.default_iters / 20));
    }
  });
  OSIRIS_ASSERT(outcome == os::OsInstance::Outcome::kCompleted);

  std::printf("Table VI — per-component memory overhead (bytes)\n\n");
  TablePrinter table({"Server", "Base state", "+clone", "+undo log (max)", "Total overhead"});
  std::size_t total_base = 0, total_clone = 0, total_log = 0;
  for (recovery::Recoverable* comp : inst.components()) {
    const std::size_t base = comp->data_section_size();
    const std::size_t clone = inst.engine().clone_bytes(comp->endpoint());
    const std::size_t log = comp->ckpt_context().log().stats().max_log_bytes;
    total_base += base;
    total_clone += clone;
    total_log += log;
    table.add_row({std::string(comp->name()), std::to_string(base), std::to_string(clone),
                   std::to_string(log), std::to_string(clone + log)});
  }
  table.add_separator();
  table.add_row({"total", std::to_string(total_base), std::to_string(total_clone),
                 std::to_string(total_log), std::to_string(total_clone + total_log)});
  table.print();

  const double factor =
      total_base > 0 ? static_cast<double>(total_base + total_clone + total_log) /
                           static_cast<double>(total_base)
                     : 0.0;
  std::printf("\nmemory usage factor vs base: %.1fx (paper: ~6x for the five servers)\n",
              factor);
  std::printf("paper shape: VM dominates both the clone pre-allocation and the\n"
              "undo-log columns; the other servers' overheads are comparatively tiny\n");
  return 0;
}
