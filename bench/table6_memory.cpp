// Regenerates Table VI: "Per-component memory overhead" — base memory usage
// per server, the pre-allocated spare clone, and the maximum undo-log size
// observed while running the unixbench workloads.
//
// Paper reference (kB): PM 628/944/1, VFS 1252/1600/13, VM 4532/18032/24576,
// DS 248/488/1, RS 1696/5004/1; total overhead 50660 kB, dominated by VM's
// clone pre-allocation and undo log. Absolute sizes differ (our servers are
// simulator-scale), but the shape — VM dominating both overhead columns —
// reproduces.
#include <cstdio>

#include "os/instance.hpp"
#include "support/table_printer.hpp"
#include "workload/unixbench.hpp"

using namespace osiris;
using namespace osiris::workload;

namespace {

/// One Table VI pass: boot, drive every unixbench workload once inside one
/// machine so each server's undo-log high-water mark reflects its busiest
/// request, then print the per-component byte columns. Returns the totals so
/// main() can compare the paper-scale and page-tier configurations.
struct Totals {
  std::size_t base = 0, clone = 0, log = 0, aux = 0, snaps = 0;
};

Totals run_config(const os::OsConfig& cfg, bool with_pages_columns) {
  os::OsInstance inst(cfg);
  register_ub_programs(inst.programs());
  inst.boot();
  const auto outcome = inst.run([](os::ISys& sys) {
    for (const UbWorkload& w : ub_workloads()) {
      w.body(sys, std::max<std::uint64_t>(1, w.default_iters / 20));
    }
  });
  OSIRIS_ASSERT(outcome == os::OsInstance::Outcome::kCompleted);

  std::vector<std::string> headers = {"Server", "Base state", "+clone", "+undo log (max)"};
  if (with_pages_columns) {
    // DESIGN.md §17: the aux regions (DS blobs, VFS journal) and the page
    // tier's snapshot-buffer high-water. The clone column already includes
    // the aux image — the overhead the tier's delta restarts amortize.
    headers.push_back("+aux region");
    headers.push_back("+page snaps (max)");
  }
  headers.push_back("Total overhead");
  TablePrinter table(headers);
  Totals t;
  for (recovery::Recoverable* comp : inst.components()) {
    const std::size_t base = comp->data_section_size();
    const std::size_t clone = inst.engine().clone_bytes(comp->endpoint());
    const std::size_t log = comp->ckpt_context().log().stats().max_log_bytes;
    const std::size_t aux = comp->aux_section_size();
    const ckpt::PageStore* ps = comp->page_store();
    const std::size_t snaps = ps != nullptr ? ps->stats().max_resident_bytes : 0;
    t.base += base;
    t.clone += clone;
    t.log += log;
    t.aux += aux;
    t.snaps += snaps;
    std::vector<std::string> row = {std::string(comp->name()), std::to_string(base),
                                    std::to_string(clone), std::to_string(log)};
    if (with_pages_columns) {
      row.push_back(std::to_string(aux));
      row.push_back(std::to_string(snaps));
    }
    row.push_back(std::to_string(clone + log + snaps));
    table.add_row(row);
  }
  table.add_separator();
  std::vector<std::string> total_row = {"total", std::to_string(t.base), std::to_string(t.clone),
                                        std::to_string(t.log)};
  if (with_pages_columns) {
    total_row.push_back(std::to_string(t.aux));
    total_row.push_back(std::to_string(t.snaps));
  }
  total_row.push_back(std::to_string(t.clone + t.log + t.snaps));
  table.add_row(total_row);
  table.print();
  return t;
}

}  // namespace

int main() {
  os::OsConfig cfg;  // enhanced policy, window-gated instrumentation
  std::printf("Table VI — per-component memory overhead (bytes)\n\n");
  const Totals t = run_config(cfg, /*with_pages_columns=*/false);

  const double factor =
      t.base > 0 ? static_cast<double>(t.base + t.clone + t.log) / static_cast<double>(t.base)
                 : 0.0;
  std::printf("\nmemory usage factor vs base: %.1fx (paper: ~6x for the five servers)\n",
              factor);
  std::printf("paper shape: VM dominates both the clone pre-allocation and the\n"
              "undo-log columns; the other servers' overheads are comparatively tiny\n");

  // The same accounting at the ROADMAP's scale: MB aux regions behind the
  // page tier. The undo-log high-water must NOT grow with the aux state —
  // stores landing there cost page snapshots, bounded by the per-window
  // dirty set, not by region size.
  os::OsConfig paged = cfg;
  paged.ckpt_pages.enabled = true;
  paged.ds_blob_slots = 1024;     // ~4 MiB of DS blob payloads
  paged.vfs_journal_slots = 4096; // MB-scale VFS op journal
  std::printf("\nTable VI.b — with the page tier and MB-scale aux state "
              "(ckpt_pages on)\n\n");
  const Totals p = run_config(paged, /*with_pages_columns=*/true);
  const double aux_mb = static_cast<double>(p.aux) / (1024.0 * 1024.0);
  const double snap_pct =
      p.aux > 0 ? 100.0 * static_cast<double>(p.snaps) / static_cast<double>(p.aux) : 0.0;
  std::printf("\npage-tier shape: %.1f MiB of aux state costs %zu B of snapshot\n"
              "buffers at high-water (%.2f%% of the state it protects) and leaves\n"
              "the arena undo-log column at paper scale (%zu B vs %zu B without).\n",
              aux_mb, p.snaps, snap_pct, p.log, t.log);
  return 0;
}
